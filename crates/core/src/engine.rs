//! The multi-worker RAP-WAM engine.
//!
//! The engine executes a [`CompiledProgram`] on a configurable number of
//! workers (PEs).  The stepping loop lives behind the
//! [`crate::sched::Scheduler`] trait; the engine only defines what one
//! worker does with one slot.  Internally the engine is split along the
//! line an actually-parallel backend needs:
//!
//! * [`EngineCore`] — state shared by every PE, behind interior mutability:
//!   the program, the sharded [`Memory`], atomic run counters, the
//!   completion flag, and one *board* per PE (its Goal-Stack mirror and
//!   Message-Buffer allocation state) that other PEs may touch under a
//!   lock.
//! * [`Worker`] — one PE's registers and host-side bookkeeping, owned
//!   exclusively by whichever thread is stepping that PE.
//! * `Step` — the pairing of `&EngineCore` with `&mut Worker`: every
//!   instruction, unification, builtin and scheduling action is a method on
//!   `Step`, so the same execution code serves both the deterministic
//!   single-thread backends and the free-running relaxed backend, which
//!   hands each worker to its own OS thread.
//!
//! Scheduling is *on demand*: `pcall_goal` pushes Goal Frames onto the
//! issuing worker's Goal Stack; the waiting parent picks its own goals back
//! up through the cheap local path, and *idle* workers steal the rest (a
//! waiting worker never steals — see `Step::try_dispatch_work`).  Completion is recorded in the Parcall Frame's
//! counters and (for stolen goals) signalled through the parent's Message
//! Buffer, generating exactly the locked/global traffic the paper's Table 1
//! describes.  Cross-PE completion uses a *commit protocol* whose last
//! memory action is the atomic increment of the Parcall Frame's completion
//! counter, so that under the relaxed backend a parent that observes the
//! counter at its target value is guaranteed to also observe every slot
//! status, binding and message the finished goals produced.

use crate::answer::extract_binding;
use crate::cell::{Cell, NONE_ADDR};
use crate::error::{EngineError, EngineResult};
use crate::frames::{choice, env, goal_frame, marker, message, parcall};
use crate::known;
use crate::layout::{board, Area, MemoryConfig, ObjectKind};
use crate::mem::Memory;
use crate::sched::{scheduler_for, DeterminismMode, SchedulerKind};
use crate::stats::{RunStats, WorkerStats};
use crate::trace::MemRef;
use crate::worker::{GoalContext, Mode, Resume, Worker, WorkerStatus};
use pwam_compiler::CompiledProgram;
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of workers (PEs).
    pub num_workers: usize,
    /// Per-worker Stack Set sizes.
    pub memory: MemoryConfig,
    /// Collect the full memory-reference trace (needed for cache simulation).
    pub collect_trace: bool,
    /// Abort after this many instructions (guards against runaway programs).
    pub max_steps: u64,
    /// Instructions executed per worker per scheduling round.
    pub quantum: u32,
    /// Number of X registers per worker.
    pub num_x_regs: usize,
    /// Which execution backend steps the workers.
    pub scheduler: SchedulerKind,
    /// How much scheduling nondeterminism the backend may exploit.
    pub determinism: DeterminismMode,
    /// How long the relaxed backend may observe a completely stalled machine
    /// (no instruction executed anywhere, nothing to steal) before aborting.
    /// Valid programs never stall; this is the safety net for engine bugs,
    /// sized so tests hang for seconds, not forever.
    pub stall_timeout: Duration,
    /// Wall-clock budget for the run.  `None` (the default) means unlimited;
    /// the serving layer sets it to enforce per-request deadlines, reusing
    /// the same periodic progress checks as the stall watchdog.
    pub time_budget: Option<Duration>,
    /// Deterministic instruction-fuel budget **per execution leg** (each
    /// `run`/`resume` re-arms it, mirroring the per-leg deadline clock).
    /// `None` (the default) means unlimited.  Unlike `time_budget`, fuel is
    /// counted in executed instructions, so where a run stops is a pure
    /// function of the program: the strict backends preempt at the first
    /// round boundary at or past the budget (checked in `end_round`, which
    /// both dispatch paths and both strict backends funnel through), leaving
    /// the machine state byte-identical across flat/classic dispatch and
    /// interleaved/threaded-strict scheduling.  The relaxed backend checks
    /// fuel at its existing batch boundaries, so preemption is prompt but
    /// the exact stop point is schedule-dependent there (same contract as
    /// every other relaxed-mode observable).  A preempted one-shot run
    /// fails with [`EngineError::FuelExhausted`]; a resumable run suspends
    /// with [`SuspendReason::FuelExhausted`] and continues via
    /// [`HostResult::Continue`].
    pub fuel: Option<u64>,
    /// Execute through the classic (pre-flattening) dispatch path: indexed
    /// `Vec<Instr>` fetch and always-locked arena access.  The MLIPS gate
    /// measures the flattened fast path against this baseline on the same
    /// machine; the differential suite pins both paths byte-identical.
    pub classic_dispatch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: 1,
            memory: MemoryConfig::default(),
            collect_trace: false,
            max_steps: 2_000_000_000,
            quantum: 1,
            num_x_regs: pwam_compiler::MAX_X_REGS,
            scheduler: SchedulerKind::Interleaved,
            determinism: DeterminismMode::Strict,
            stall_timeout: Duration::from_secs(5),
            time_budget: None,
            fuel: None,
            classic_dispatch: false,
        }
    }
}

impl EngineConfig {
    /// Configuration with `n` workers and default memory sizes.
    pub fn with_workers(n: usize) -> Self {
        EngineConfig { num_workers: n, ..Default::default() }
    }
}

/// Outcome of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The query succeeded with the given bindings for the query variables.
    Success(Vec<(String, Term)>),
    /// The query failed.
    Failure,
}

impl Outcome {
    /// True if the query succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }

    /// The binding for a query variable, if the query succeeded.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        match self {
            Outcome::Success(b) => b.iter().find(|(n, _)| n == name).map(|(_, t)| t),
            Outcome::Failure => None,
        }
    }
}

/// The result of running a query: outcome, statistics and (optionally) the
/// full memory-reference trace.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub outcome: Outcome,
    pub stats: RunStats,
    pub trace: Option<Vec<MemRef>>,
}

/// What a resumable run ([`Engine::run_resumable`] / [`Engine::resume`])
/// returned control for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The query ran to a terminal state: either it failed (no/none further
    /// answers) or the caller committed to the last answer.  Read the final
    /// [`RunResult`] with [`Engine::take_result`] / [`Engine::into_result`].
    Complete,
    /// Execution is parked between instructions, waiting on the host.
    Suspended(SuspendReason),
}

/// Why a resumable engine suspended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuspendReason {
    /// An answer is available ([`Engine::answer_bindings`]).  Resume with
    /// [`HostResult::Redo`] to fail back into the engine for the next
    /// answer, or [`HostResult::Commit`] to accept it and finish.
    AnswerReady,
    /// A registered host predicate was called.  `args` are the call's
    /// argument terms (extracted from the machine state); resume with
    /// [`HostResult::Succeed`] (optionally binding arguments) or
    /// [`HostResult::Fail`].
    HostCall {
        /// The host predicate's name (from the compiled program's registry).
        name: String,
        /// The call's arguments, as terms.  Unbound variables appear as
        /// `Term::Var("_G…")` and can be bound through
        /// [`HostResult::Succeed`] by argument position.
        args: Vec<Term>,
    },
    /// The per-leg instruction-fuel budget ran out before the query produced
    /// an answer.  The machine state is parked between scheduling rounds;
    /// resume with [`HostResult::Continue`] (after re-admitting the query)
    /// to grant another leg of fuel and keep executing exactly where the
    /// run left off.
    FuelExhausted,
}

/// The host's reply when re-entering a suspended engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostResult {
    /// After [`SuspendReason::AnswerReady`]: reject the answer and
    /// backtrack for the next one.
    Redo,
    /// After [`SuspendReason::AnswerReady`]: accept the answer and finish
    /// the query (the cursor's cut).
    Commit,
    /// After [`SuspendReason::HostCall`]: the host predicate succeeds,
    /// unifying each `(index, term)` pair with the argument at that
    /// 0-based position.  A non-unifiable binding fails the call instead.
    Succeed(Vec<(usize, Term)>),
    /// After [`SuspendReason::HostCall`]: the host predicate fails;
    /// execution backtracks.
    Fail,
    /// After [`SuspendReason::FuelExhausted`]: grant a fresh leg of fuel
    /// (per [`EngineConfig::fuel`]) and continue execution in place.
    Continue,
}

/// The suspension record `call_host` leaves behind for [`Engine::resume`].
pub(crate) struct PendingHostCall {
    /// Worker that executed the `call_host` (its `p` already points at the
    /// continuation).
    worker: usize,
    /// Index into the compiled program's host registry.
    host: u32,
    /// The call's argument cells (`X1..Xn` at the suspension point).
    args: Vec<Cell>,
}

/// One goal stolen from another worker's Goal Stack, as observed by the
/// scheduler.  The threaded backends turn these into cross-thread messages;
/// the reference backend delivers them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Worker that took the goal.
    pub thief: usize,
    /// Worker whose Goal Stack the frame came from.
    pub victim: usize,
    /// Address of the stolen Goal Frame.
    pub frame: u32,
}

/// One `cancel_goal` request posted during parcall cancellation (backward
/// execution), as observed by the scheduler.  Like [`StealEvent`]s, the
/// semantic content travels through the shared per-PE boards; the scheduler
/// additionally transports these as cross-thread notifications to the
/// executor's thread (channel messages on the threaded backends, in-place
/// delivery on the reference one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelEvent {
    /// Worker that owns the cancelled Parcall Frame.
    pub canceller: usize,
    /// Worker currently executing the in-flight goal being cancelled.
    pub executor: usize,
    /// The cancelled Parcall Frame.
    pub pf: u32,
    /// Slot index of the in-flight goal within the frame.
    pub slot: u32,
}

/// Per-PE scheduling state that other PEs may inspect or update: the mirror
/// of the Goal Stack (for stealing) and the Message Buffer allocation state
/// (for completion messages).  Every access takes the board's lock; under
/// the strict backends the lock is trivially uncontended, under the relaxed
/// backend it is the word-level lock of the paper's Goal Stack / Message
/// Buffer rows of Table 1.
#[derive(Debug, Default)]
pub(crate) struct PeBoard {
    /// Goal Frames currently on this PE's Goal Stack (addresses, oldest
    /// first); pushes come from the owner, pops from owner and thieves.
    pub goal_frames: Vec<u32>,
    /// Authoritative Goal-Stack allocation top.
    pub goal_top: u32,
    /// Next free slot in the Message Buffer (bump allocation with wrap).
    pub msg_top: u32,
    /// Number of unread messages in the Message Buffer.
    pub pending_messages: u32,
    /// Pending `cancel_goal` requests `(pf, slot)` for in-flight stolen
    /// goals this PE is executing, posted by the cancelling parent under
    /// this board's lock and drained by the owner at instruction-batch
    /// boundaries.
    pub cancel_requests: Vec<(u32, u32)>,
}

/// A Goal Frame's words, read under the owning board's lock before the
/// frame's storage can be reused (the arguments go straight into the
/// thief's argument registers).
struct GoalFrameImage {
    frame: u32,
    code: u32,
    arity: u32,
    pf: u32,
    slot: u32,
}

/// `finished` encoding in [`EngineCore`].
const RUNNING: u8 = 0;
const SUCCEEDED: u8 = 1;
const FAILED: u8 = 2;
/// Execution stopped at a host-predicate call (`call_host`); the machine
/// state is parked between instructions and [`Engine::resume`] re-enters it.
/// Note `SUCCEEDED` doubles as the answer-boundary suspension: a first
/// solution is terminal for [`Engine::run`] but resumable (via
/// [`HostResult::Redo`]) for a cursor, so the hot success path needs no new
/// state.
const SUSPENDED: u8 = 3;
/// Execution stopped because the per-leg instruction-fuel budget ran out.
/// Like `SUSPENDED`, the machine state is parked between instructions (here:
/// between whole scheduling rounds) and [`Engine::resume`] re-enters it with
/// [`HostResult::Continue`].
const PREEMPTED: u8 = 4;

/// Everything the PEs share: program, memory, run counters, per-PE boards.
///
/// All mutation goes through interior mutability (atomics and small
/// mutexes), so a `&EngineCore` can be handed to any number of OS threads;
/// each thread pairs it with the `&mut Worker` it exclusively owns (see
/// `Step`).
pub struct EngineCore<'p> {
    pub program: &'p CompiledProgram,
    pub config: EngineConfig,
    pub mem: Memory,
    /// Query status: `RUNNING` / `SUCCEEDED` / `FAILED`.
    finished: AtomicU8,
    /// Instructions executed (all PEs), flushed per slot/batch.
    pub(crate) steps: AtomicU64,
    /// Scheduling rounds (strict backends) or critical-path estimate
    /// (relaxed backend).
    cycles: AtomicU64,
    pub(crate) parcalls: AtomicU64,
    parallel_goals: AtomicU64,
    goals_actually_parallel: AtomicU64,
    pub(crate) inferences: AtomicU64,
    /// Failures that reached a parallel-goal boundary or crossed a Parcall
    /// Frame on the failing worker's `PF` chain.  Zero here is a *logical*
    /// property (independence makes every goal's success or failure
    /// schedule-free until a first failure exists), so a reference run with
    /// zero guarantees no schedule can trigger backward execution.
    parcall_failures: AtomicU64,
    /// Parcall Frames cancelled by backward execution.
    parcalls_cancelled: AtomicU64,
    /// Goal Frames retracted un-executed during cancellation.
    goals_cancelled: AtomicU64,
    /// `cancel_goal` requests posted for in-flight stolen goals.
    cancel_requests: AtomicU64,
    /// Round-robin cursor over steal victims.
    steal_cursor: AtomicUsize,
    /// One board per PE.
    pub(crate) boards: Vec<Mutex<PeBoard>>,
    /// Cheap "this PE has pending cancel_goal requests" flags, so the hot
    /// execution path pays one relaxed atomic load instead of a board lock.
    cancel_flags: Vec<AtomicBool>,
    /// Steals performed by each PE (as thief) since the scheduler last
    /// drained them.
    steal_logs: Vec<Mutex<Vec<StealEvent>>>,
    /// `cancel_goal` requests posted by each PE (as canceller) since the
    /// scheduler last drained them (notification transport, like
    /// `steal_logs`).
    cancel_logs: Vec<Mutex<Vec<CancelEvent>>>,
    /// First engine error raised on any thread of the relaxed backend.
    abort: Mutex<Option<EngineError>>,
    aborted: AtomicBool,
    /// The host call the engine suspended at (`finished == SUSPENDED`).
    /// Written exactly once per suspension, by the worker that won the
    /// RUNNING→SUSPENDED race in [`Step::suspend_host`]; taken by
    /// [`Engine::resume`].  Off the hot path: programs without host
    /// predicates never touch it.
    pending_host: Mutex<Option<PendingHostCall>>,
    /// When the run started (re-armed by `run`/`reset`); the reference point
    /// for the `time_budget` deadline.
    started: Instant,
    /// Absolute `steps` threshold at which the current execution leg is
    /// preempted (`u64::MAX` = unlimited).  Re-armed to
    /// `steps + config.fuel` at the start of every `run`/`resume` leg.
    fuel_limit: AtomicU64,
}

impl<'p> EngineCore<'p> {
    /// `Some(true)` once the query succeeded, `Some(false)` once it failed.
    /// A *suspended* engine (parked at a host call) reports `None`: it has
    /// no outcome yet.  Drivers must gate on `EngineCore::halted`, which
    /// also covers suspension.
    pub fn finished(&self) -> Option<bool> {
        match self.finished.load(Ordering::Acquire) {
            RUNNING | SUSPENDED | PREEMPTED => None,
            SUCCEEDED => Some(true),
            _ => Some(false),
        }
    }

    /// True once execution must stop handing out slots: the query succeeded,
    /// failed, or suspended at a host call.  This is the drivers' exit gate;
    /// [`EngineCore::finished`] stays the *outcome* accessor.
    #[inline]
    pub(crate) fn halted(&self) -> bool {
        self.finished.load(Ordering::Acquire) != RUNNING
    }

    /// Raw `finished` state (RUNNING/SUCCEEDED/FAILED/SUSPENDED).
    #[inline]
    fn state(&self) -> u8 {
        self.finished.load(Ordering::Acquire)
    }

    /// Record the query outcome (first writer wins).
    fn set_finished(&self, success: bool) {
        let _ = self.finished.compare_exchange(
            RUNNING,
            if success { SUCCEEDED } else { FAILED },
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Instructions executed so far across all PEs (as of the last flush).
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Record the first engine error of a relaxed run and tell every thread
    /// to wind down.
    pub(crate) fn abort_with(&self, e: EngineError) {
        let mut slot = self.abort.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.aborted.store(true, Ordering::Release);
    }

    /// True once some thread has aborted the run.
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Take the recorded abort error, if any.
    pub(crate) fn take_abort(&self) -> Option<EngineError> {
        self.abort.lock().unwrap().take()
    }

    /// Fail the run if its wall-clock budget is exhausted.  Cheap when no
    /// budget is set; callers still rate-limit the check because
    /// `Instant::now` is not free on the per-instruction path.
    pub(crate) fn check_deadline(&self) -> EngineResult<()> {
        if let Some(budget) = self.config.time_budget {
            if self.started.elapsed() > budget {
                return Err(EngineError::DeadlineExceeded { budget });
            }
        }
        Ok(())
    }

    /// Preempt the run (RUNNING → PREEMPTED, first writer wins) once the
    /// current leg's instruction fuel is spent.  Unlike the deadline this is
    /// *not* an error: the machine state stays parked for
    /// [`Engine::resume`].  The CAS keeps a query that succeeded or failed
    /// in the same round ahead of the preemption.  One relaxed load when no
    /// fuel is configured, so it runs unconditionally every round.
    pub(crate) fn check_fuel(&self) {
        if self.steps.load(Ordering::Relaxed) >= self.fuel_limit.load(Ordering::Relaxed) {
            let _ = self.finished.compare_exchange(RUNNING, PREEMPTED, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Arm the fuel threshold for a fresh execution leg.
    fn re_arm_fuel(&self) {
        let limit = match self.config.fuel {
            Some(fuel) => self.steps.load(Ordering::Relaxed).saturating_add(fuel),
            None => u64::MAX,
        };
        self.fuel_limit.store(limit, Ordering::Relaxed);
    }

    /// Drain the steals PE `thief` performed since the last drain.
    pub(crate) fn drain_steals_of(&self, thief: usize) -> Vec<StealEvent> {
        std::mem::take(&mut *self.steal_logs[thief].lock().unwrap())
    }

    /// Drain the `cancel_goal` requests PE `canceller` posted since the
    /// last drain.
    pub(crate) fn drain_cancels_of(&self, canceller: usize) -> Vec<CancelEvent> {
        std::mem::take(&mut *self.cancel_logs[canceller].lock().unwrap())
    }

    /// Record the critical-path cycle estimate of a relaxed run.
    pub(crate) fn set_cycles(&self, cycles: u64) {
        self.cycles.store(cycles, Ordering::Relaxed);
    }

    /// Classify a data address by the object kind that lives in its area
    /// (used when the engine only knows an address, e.g. for dereferencing
    /// and untrailing).
    pub(crate) fn object_for_addr(&self, addr: u32) -> ObjectKind {
        match self.mem.map.area_of(addr) {
            Area::Heap => ObjectKind::HeapTerm,
            Area::LocalStack => ObjectKind::EnvPermVar,
            Area::ControlStack => ObjectKind::Marker,
            Area::Trail => ObjectKind::TrailEntry,
            Area::Pdl => ObjectKind::PdlEntry,
            Area::GoalStack => ObjectKind::GoalFrame,
            Area::MessageBuffer => ObjectKind::Message,
        }
    }
}

/// The abstract-machine engine: the shared core plus every worker's state.
///
/// Most callers go through [`crate::session::Session`]; driving the engine
/// directly looks like this:
///
/// ```
/// use pwam_compiler::{compile_program_and_query, CompileOptions};
/// use pwam_front::{parser, SymbolTable};
/// use rapwam::{Engine, EngineConfig};
///
/// let mut syms = SymbolTable::new();
/// let program = parser::parse_program("p(1).\np(2).", &mut syms).unwrap();
/// let query = parser::parse_query("p(X)", &mut syms).unwrap();
/// let compiled =
///     compile_program_and_query(&program, &query, &mut syms, CompileOptions::parallel()).unwrap();
///
/// let engine = Engine::new(&compiled, EngineConfig::with_workers(2));
/// let result = engine.run(&syms).unwrap();
/// assert!(result.outcome.is_success());
/// ```
pub struct Engine<'p> {
    pub(crate) core: EngineCore<'p>,
    pub(crate) workers: Vec<Worker>,
}

/// One worker's view of the machine: the shared core plus exclusive access
/// to that worker's state.  All execution logic lives here; the scheduler
/// backends differ only in how they construct and drive `Step`s.
pub(crate) struct Step<'a, 'p> {
    pub(crate) core: &'a EngineCore<'p>,
    pub(crate) wk: &'a mut Worker,
}

impl<'p> Engine<'p> {
    /// Create an engine ready to run the program's query.
    pub fn new(program: &'p CompiledProgram, config: EngineConfig) -> Self {
        let mem = Memory::new(config.memory, config.num_workers, config.collect_trace);
        Engine::build(program, config, mem)
    }

    /// Create an engine around a recycled [`Memory`] (the warm-engine path
    /// of a serving pool).  When the memory's shape — per-worker area sizes
    /// and worker count — matches the configuration, its arenas are reset in
    /// place and reused, skipping the allocation that dominates engine
    /// construction; otherwise a fresh memory is allocated.  Returns the
    /// engine and whether the arenas were actually reused.
    pub fn with_recycled_memory(
        program: &'p CompiledProgram,
        config: EngineConfig,
        mut memory: Memory,
    ) -> (Self, bool) {
        if memory.map.config == config.memory && memory.map.num_workers == config.num_workers {
            memory.reset(config.collect_trace);
            (Engine::build(program, config, memory), true)
        } else {
            (Engine::new(program, config), false)
        }
    }

    /// Assemble an engine around an already-allocated (pristine) memory.
    fn build(program: &'p CompiledProgram, config: EngineConfig, mut mem: Memory) -> Self {
        assert!(config.num_workers >= 1, "at least one worker is required");
        assert!(config.num_workers <= 255, "at most 255 workers are supported");
        let config_fuel = config.fuel;
        // Only the relaxed threaded backend lets more than one thread touch
        // the memory at a time; every other backend serialises access by
        // construction (interleaved: single thread; strict threaded: the
        // token channel's send/recv orders the handoff), so those runs may
        // skip the per-arena locks.  The classic dispatch path keeps them:
        // it prices the pre-flattening cost model the MLIPS gate compares
        // against.
        let relaxed =
            config.scheduler == SchedulerKind::Threaded && config.determinism == DeterminismMode::Relaxed;
        mem.set_serial(!config.classic_dispatch && !relaxed);
        let mut workers: Vec<Worker> =
            (0..config.num_workers).map(|i| Worker::new(i as u8, &mem.map, config.num_x_regs)).collect();
        for wk in &mut workers {
            // Per-predicate profile storage, indexed by code address (entry
            // points of the predicates actually called).  The query body is
            // charged to `query_start` until the first call.
            wk.prof_counts = vec![0; program.code_len()];
            wk.prof_pred = program.query_start;
        }
        workers[0].p = program.query_start;
        workers[0].cp = program.query_start;
        workers[0].status = WorkerStatus::Running;
        let boards = (0..config.num_workers)
            .map(|w| {
                Mutex::new(PeBoard {
                    goal_frames: Vec::new(),
                    goal_top: mem.map.area_base(w, Area::GoalStack),
                    msg_top: mem.map.area_base(w, Area::MessageBuffer),
                    pending_messages: 0,
                    cancel_requests: Vec::new(),
                })
            })
            .collect();
        let steal_logs = (0..config.num_workers).map(|_| Mutex::new(Vec::new())).collect();
        let cancel_logs = (0..config.num_workers).map(|_| Mutex::new(Vec::new())).collect();
        let cancel_flags = (0..config.num_workers).map(|_| AtomicBool::new(false)).collect();
        Engine {
            core: EngineCore {
                program,
                config,
                mem,
                finished: AtomicU8::new(RUNNING),
                steps: AtomicU64::new(0),
                cycles: AtomicU64::new(0),
                parcalls: AtomicU64::new(0),
                parallel_goals: AtomicU64::new(0),
                goals_actually_parallel: AtomicU64::new(0),
                inferences: AtomicU64::new(0),
                parcall_failures: AtomicU64::new(0),
                parcalls_cancelled: AtomicU64::new(0),
                goals_cancelled: AtomicU64::new(0),
                cancel_requests: AtomicU64::new(0),
                steal_cursor: AtomicUsize::new(0),
                boards,
                cancel_flags,
                steal_logs,
                cancel_logs,
                abort: Mutex::new(None),
                aborted: AtomicBool::new(false),
                pending_host: Mutex::new(None),
                started: Instant::now(),
                fuel_limit: AtomicU64::new(config_fuel.unwrap_or(u64::MAX)),
            },
            workers,
        }
    }

    /// Run the query to completion on the configured scheduler backend and
    /// collect results.
    pub fn run(self, syms: &SymbolTable) -> EngineResult<RunResult> {
        let (result, _engine) = self.run_reusable(syms)?;
        Ok(result)
    }

    /// Like [`Engine::run`], but also hands the finished engine back so the
    /// caller can [`Engine::reset`] it (same program) or recover its arenas
    /// with [`Engine::into_memory`] (different program).  On error the
    /// engine is lost — a pool simply rebuilds cold on the next request.
    pub fn run_reusable(mut self, syms: &SymbolTable) -> EngineResult<(RunResult, Engine<'p>)> {
        self.core.started = Instant::now();
        self.core.re_arm_fuel();
        let scheduler = scheduler_for(self.core.config.scheduler, self.core.config.determinism);
        let mut engine = scheduler.drive(self)?;
        if engine.core.state() == SUSPENDED {
            return Err(EngineError::Internal(
                "query suspended at a host call; drive it through a cursor (run_resumable/resume)"
                    .to_string(),
            ));
        }
        if engine.core.state() == PREEMPTED {
            // One-shot callers have no way to grant more fuel, so preemption
            // surfaces as an error (the engine is lost, like any other
            // errored run).  Resumable callers get a suspension instead.
            let fuel = engine.core.config.fuel.unwrap_or(0);
            return Err(EngineError::FuelExhausted { fuel });
        }
        let result = engine.take_result(syms)?;
        Ok((result, engine))
    }

    /// Run the query until it completes **or suspends** — at the first
    /// answer ([`SuspendReason::AnswerReady`]) or at a host-predicate call
    /// ([`SuspendReason::HostCall`]).  The engine comes back with its entire
    /// machine state parked between instructions (worker registers, env/cp
    /// caches and `RefDelta` flushed at the suspension point, [`Memory`]
    /// intact) so [`Engine::resume`] re-enters exactly where execution left
    /// off.
    pub fn run_resumable(mut self) -> EngineResult<(RunOutcome, Engine<'p>)> {
        self.core.started = Instant::now();
        self.core.re_arm_fuel();
        self.drive_resumable()
    }

    /// Re-enter a suspended engine with the host's reply.
    ///
    /// Valid pairings: [`SuspendReason::AnswerReady`] takes
    /// [`HostResult::Redo`] or [`HostResult::Commit`];
    /// [`SuspendReason::HostCall`] takes [`HostResult::Succeed`] or
    /// [`HostResult::Fail`].  Anything else (including resuming an engine
    /// that already completed) is an [`EngineError::Internal`].
    pub fn resume(mut self, result: HostResult) -> EngineResult<(RunOutcome, Engine<'p>)> {
        // Each `resume` leg is a fresh request from the serving layer's point
        // of view, so the deadline clock and the fuel budget re-arm here.
        self.core.started = Instant::now();
        self.core.re_arm_fuel();
        match self.core.state() {
            SUCCEEDED => match result {
                HostResult::Commit => Ok((RunOutcome::Complete, self)),
                HostResult::Redo => {
                    // Fail back into the engine: restore RUNNING, revive the
                    // worker that produced the answer (the only stopped one
                    // — a worker stops only through query success or query
                    // failure) and backtrack it into the next alternative.
                    self.core.finished.store(RUNNING, Ordering::Release);
                    self.core.mem.shared_write(board::STATUS, Cell::Uint(board::STATUS_RUNNING));
                    let w =
                        self.core.mem.shared_read(board::ANSWER_PE).expect_uint("board answer pe") as usize;
                    self.workers[w].status = WorkerStatus::Running;
                    Step { core: &self.core, wk: &mut self.workers[w] }.backtrack()?;
                    self.drive_resumable()
                }
                other => Err(EngineError::Internal(format!(
                    "resume at an answer boundary expects Redo or Commit, got {other:?}"
                ))),
            },
            SUSPENDED => {
                if !matches!(result, HostResult::Succeed(_) | HostResult::Fail) {
                    return Err(EngineError::Internal(format!(
                        "resume at a host call expects Succeed or Fail, got {result:?}"
                    )));
                }
                let pending = self
                    .core
                    .pending_host
                    .lock()
                    .unwrap()
                    .take()
                    .expect("suspended engine without a pending host call");
                let w = pending.worker;
                self.core.finished.store(RUNNING, Ordering::Release);
                match result {
                    HostResult::Succeed(bindings) => {
                        let mut step = Step { core: &self.core, wk: &mut self.workers[w] };
                        let mut ok = true;
                        let mut var_memo = std::collections::HashMap::new();
                        for (idx, term) in &bindings {
                            let Some(&arg) = pending.args.get(*idx) else {
                                return Err(EngineError::Internal(format!(
                                    "host binding index {idx} out of range for {} argument(s)",
                                    pending.args.len()
                                )));
                            };
                            let cell = step.build_term(term, &mut var_memo)?;
                            if !step.unify(arg, cell)? {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            step.backtrack()?;
                        }
                        self.drive_resumable()
                    }
                    _ => {
                        Step { core: &self.core, wk: &mut self.workers[w] }.backtrack()?;
                        self.drive_resumable()
                    }
                }
            }
            PREEMPTED => {
                if !matches!(result, HostResult::Continue) {
                    return Err(EngineError::Internal(format!(
                        "resume at a fuel preemption expects Continue, got {result:?}"
                    )));
                }
                // The machine state is parked between whole rounds; simply
                // restore RUNNING (the fresh fuel leg is already armed
                // above) and let the scheduler take the next round.
                self.core.finished.store(RUNNING, Ordering::Release);
                self.drive_resumable()
            }
            FAILED => Err(EngineError::Internal("resume on a completed engine".to_string())),
            _ => Err(EngineError::Internal("resume on an engine that is still running".to_string())),
        }
    }

    /// Drive the scheduler until the engine halts, then classify the halt.
    /// Drivers return immediately when the engine is already halted (e.g. a
    /// `resume(Redo)` whose backtrack exhausted the last choice point).
    fn drive_resumable(self) -> EngineResult<(RunOutcome, Engine<'p>)> {
        let scheduler = scheduler_for(self.core.config.scheduler, self.core.config.determinism);
        let engine = scheduler.drive(self)?;
        let outcome = engine.current_outcome()?;
        Ok((outcome, engine))
    }

    /// Classify a halted engine's state as a [`RunOutcome`].
    fn current_outcome(&self) -> EngineResult<RunOutcome> {
        match self.core.state() {
            SUCCEEDED => Ok(RunOutcome::Suspended(SuspendReason::AnswerReady)),
            FAILED => Ok(RunOutcome::Complete),
            SUSPENDED => {
                let guard = self.core.pending_host.lock().unwrap();
                let pending = guard.as_ref().expect("suspended engine without a pending host call");
                let name = self
                    .core
                    .program
                    .hosts
                    .get(pending.host as usize)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| format!("$host{}", pending.host));
                let mut args = Vec::with_capacity(pending.args.len());
                for &cell in &pending.args {
                    args.push(crate::answer::extract_cell_raw(&self.core.mem, cell)?);
                }
                Ok(RunOutcome::Suspended(SuspendReason::HostCall { name, args }))
            }
            PREEMPTED => Ok(RunOutcome::Suspended(SuspendReason::FuelExhausted)),
            _ => Err(EngineError::Internal("scheduler returned without halting the engine".to_string())),
        }
    }

    /// The current answer's query-variable bindings, without symbol-table
    /// rendering (variables print as `_G<addr>`; atoms keep their interned
    /// [`pwam_front::Atom`] inside the returned [`Term`]s).  Only meaningful
    /// while suspended at [`SuspendReason::AnswerReady`].
    pub fn answer_bindings(&self) -> EngineResult<Vec<(String, Term)>> {
        if self.core.mem.shared_read(board::STATUS) != Cell::Uint(board::STATUS_SUCCEEDED) {
            return Ok(Vec::new());
        }
        let env_addr = self.core.mem.shared_read(board::ANSWER_ENV).expect_uint("board answer env");
        let mut out = Vec::new();
        for (name, slot) in &self.core.program.query_vars {
            let addr = env::y_addr(env_addr, *slot);
            let term = crate::answer::extract_binding_raw(&self.core.mem, addr)?;
            out.push((name.clone(), term));
        }
        Ok(out)
    }

    /// Run statistics of the engine as it stands (usable mid-suspension).
    pub fn stats(&self) -> RunStats {
        self.collect_stats()
    }

    /// Drain the memory-reference trace collected so far, if tracing is on.
    pub fn take_trace(&mut self) -> Option<Vec<MemRef>> {
        self.core.mem.take_trace()
    }

    /// Turn a finished engine into a [`RunResult`] (answers, statistics and
    /// the merged trace).
    pub fn into_result(mut self, syms: &SymbolTable) -> EngineResult<RunResult> {
        self.take_result(syms)
    }

    /// Extract the [`RunResult`] of a finished engine, leaving the engine
    /// behind for reuse (the trace buffer, if any, is drained).
    pub fn take_result(&mut self, syms: &SymbolTable) -> EngineResult<RunResult> {
        debug_assert!(self.core.finished().is_some(), "take_result on an unfinished engine");
        // Fold any reference counts the fast path still holds in worker
        // registers into the arena counters before reading them out.  (The
        // flat batch loop flushes at every exit, so this only catches work
        // done outside a batch, e.g. a deferred backtrack resumed from the
        // scheduler.)
        for wk in self.workers.iter_mut() {
            self.core.mem.flush_delta(wk.id as usize, &mut wk.ref_delta);
        }
        let outcome = if self.core.finished() == Some(true) {
            let bindings = self.extract_answer(syms)?;
            Outcome::Success(bindings)
        } else {
            Outcome::Failure
        };
        let stats = self.collect_stats();
        let trace = self.core.mem.take_trace();
        Ok(RunResult { outcome, stats, trace })
    }

    /// Return a finished engine to a pristine state **without freeing its
    /// arenas**, ready to run the same program's query again: every touched
    /// memory word is cleared, the workers, boards and counters are reborn,
    /// and tracing is re-armed per the configuration.  This is the
    /// reusable-engine path of the serving layer — per-PE Stack Sets are
    /// long-lived resources (the paper's whole locality story), so a warm
    /// engine skips the arena allocation that dominates cold construction.
    ///
    /// A reset engine is observationally identical to a fresh one: the
    /// differential suite pins byte-identical answers, per-area counts and
    /// traces between fresh and reset-and-reused engines.
    pub fn reset(&mut self) {
        let core = &mut self.core;
        core.mem.reset(core.config.collect_trace);
        for wk in self.workers.iter_mut() {
            // Recycle the profile buffer across resets: the program (and so
            // the code length) is fixed for the engine's lifetime.
            let mut prof = std::mem::take(&mut wk.prof_counts);
            *wk = Worker::new(wk.id, &core.mem.map, core.config.num_x_regs);
            prof.clear();
            prof.resize(core.program.code_len(), 0);
            wk.prof_counts = prof;
            wk.prof_pred = core.program.query_start;
        }
        self.workers[0].p = core.program.query_start;
        self.workers[0].cp = core.program.query_start;
        self.workers[0].status = WorkerStatus::Running;
        for (w, board) in core.boards.iter_mut().enumerate() {
            let b = board.get_mut().unwrap();
            b.goal_frames.clear();
            b.goal_top = core.mem.map.area_base(w, Area::GoalStack);
            b.msg_top = core.mem.map.area_base(w, Area::MessageBuffer);
            b.pending_messages = 0;
            b.cancel_requests.clear();
        }
        for log in core.steal_logs.iter_mut() {
            log.get_mut().unwrap().clear();
        }
        for log in core.cancel_logs.iter_mut() {
            log.get_mut().unwrap().clear();
        }
        for flag in core.cancel_flags.iter_mut() {
            *flag.get_mut() = false;
        }
        *core.finished.get_mut() = RUNNING;
        *core.steps.get_mut() = 0;
        *core.cycles.get_mut() = 0;
        *core.parcalls.get_mut() = 0;
        *core.parallel_goals.get_mut() = 0;
        *core.goals_actually_parallel.get_mut() = 0;
        *core.inferences.get_mut() = 0;
        *core.parcall_failures.get_mut() = 0;
        *core.parcalls_cancelled.get_mut() = 0;
        *core.goals_cancelled.get_mut() = 0;
        *core.cancel_requests.get_mut() = 0;
        *core.steal_cursor.get_mut() = 0;
        *core.abort.get_mut().unwrap() = None;
        *core.aborted.get_mut() = false;
        *core.pending_host.get_mut().unwrap() = None;
        core.started = Instant::now();
        *core.fuel_limit.get_mut() = core.config.fuel.unwrap_or(u64::MAX);
    }

    /// Tear the engine down to its [`Memory`], keeping the arena allocations
    /// alive for [`Engine::with_recycled_memory`] (the pool's warm path
    /// across *different* compiled programs).
    pub fn into_memory(self) -> Memory {
        self.core.mem
    }

    /// The shared core (scheduler SPI).
    pub(crate) fn core(&self) -> &EngineCore<'p> {
        &self.core
    }

    /// Split the engine into its shared core and the per-PE worker states
    /// (relaxed backend: each worker goes to its own thread).
    pub(crate) fn into_parts(self) -> (EngineCore<'p>, Vec<Worker>) {
        (self.core, self.workers)
    }

    /// Reassemble an engine after a split run.
    pub(crate) fn from_parts(core: EngineCore<'p>, workers: Vec<Worker>) -> Self {
        Engine { core, workers }
    }

    // -----------------------------------------------------------------
    // Scheduler SPI
    //
    // The stepping loop is owned by a `Scheduler` backend (see `sched`).
    // A round gives every worker `quantum` slots:
    //
    //     engine.begin_round();
    //     let mut progress = false;
    //     for w in 0..n { progress |= engine.step_slot(w)?; }
    //     engine.end_round(progress)?;
    //
    // repeated until `finished()` reports an outcome.  The relaxed backend
    // bypasses the round structure and drives each worker's `Step`
    // directly.
    // -----------------------------------------------------------------

    /// `Some(true)` once the query succeeded, `Some(false)` once it failed.
    pub fn finished(&self) -> Option<bool> {
        self.core.finished()
    }

    /// True once the engine has succeeded, failed or suspended — the
    /// drivers' exit condition (see `EngineCore::halted`).
    pub fn halted(&self) -> bool {
        self.core.halted()
    }

    /// Number of workers (PEs) in this engine.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Start a scheduling round.
    pub fn begin_round(&mut self) {
        self.core.cycles.fetch_add(1, Ordering::Relaxed);
    }

    /// Give worker `w` its slot of the current round (`quantum` instructions,
    /// or one scheduling action when it is idle/waiting).  Returns `true` if
    /// the worker made progress.  A no-op once the query has finished.
    pub fn step_slot(&mut self, w: usize) -> EngineResult<bool> {
        Step { core: &self.core, wk: &mut self.workers[w] }.run_slot()
    }

    /// Close a scheduling round: detect deadlock and enforce the step limit.
    pub fn end_round(&mut self, any_progress: bool) -> EngineResult<()> {
        if !any_progress && !self.core.halted() {
            return Err(EngineError::Internal("scheduler deadlock: no worker can make progress".to_string()));
        }
        if self.core.steps() > self.core.config.max_steps {
            return Err(EngineError::StepLimitExceeded { limit: self.core.config.max_steps });
        }
        // Per-request deadline, checked every 1024 rounds so `Instant::now`
        // stays off the per-instruction path (a round is `num_workers`
        // slots, so the check granularity is a few thousand instructions).
        if self.core.cycles.load(Ordering::Relaxed) & 0x3ff == 0 {
            self.core.check_deadline()?;
        }
        // Instruction fuel, checked every round: whole rounds always
        // complete before a preemption, so the stop point is a deterministic
        // function of the program (both strict backends close rounds
        // through here, on both dispatch paths).
        self.core.check_fuel();
        Ok(())
    }

    /// Drain the steals performed since the last drain (scheduler SPI).
    pub fn drain_steals(&mut self) -> Vec<StealEvent> {
        let mut all = Vec::new();
        for log in &self.core.steal_logs {
            all.append(&mut log.lock().unwrap());
        }
        all
    }

    /// Record that `count` steal notifications reached worker `victim`
    /// (scheduler SPI: the threaded backends deliver these over channels,
    /// the reference backend in place).
    pub fn deliver_steal_notices(&mut self, victim: usize, count: u64) {
        self.workers[victim].steal_notices += count;
    }

    /// Drain the `cancel_goal` requests posted since the last drain
    /// (scheduler SPI, mirroring [`Engine::drain_steals`]).
    pub fn drain_cancels(&mut self) -> Vec<CancelEvent> {
        let mut all = Vec::new();
        for log in &self.core.cancel_logs {
            all.append(&mut log.lock().unwrap());
        }
        all
    }

    /// Record that `count` cancel notifications reached worker `executor`
    /// (scheduler SPI: the threaded backends deliver these over channels,
    /// the reference backend in place).
    pub fn deliver_cancel_notices(&mut self, executor: usize, count: u64) {
        self.workers[executor].cancel_notices += count;
    }

    /// Goal Frames still sitting on any PE's board.  Zero once a query has
    /// finished: success implies every parcall completed, and failure drains
    /// (or retracts) every scheduled goal through the cancellation protocol
    /// — a nonzero count after a run is a leak.
    pub fn pending_goal_frames(&self) -> usize {
        self.core.boards.iter().map(|b| b.lock().unwrap().goal_frames.len()).sum()
    }

    /// A 64-bit FNV-1a fingerprint of the complete *semantic* machine
    /// state: every worker's register file (X cells, unify mode, status,
    /// in-progress goal contexts, pending cancels) plus every live arena
    /// word of every Stack Set (heap, local stack, control stack, trail and
    /// goal stack up to each worker's tops, message buffer up to the
    /// board's top) and the per-PE board scalars.  Performance caches
    /// (`cp_top`), profiling attribution and statistics counters are
    /// excluded: they may legitimately differ across dispatch paths while
    /// the machine state is identical.  The fuel differential suite uses
    /// this to pin the preemption point byte-identical across flat/classic
    /// dispatch and interleaved/threaded-strict scheduling.
    ///
    /// Reads memory untraced only, so fingerprinting never perturbs
    /// statistics.
    pub fn state_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn mix(&mut self, v: u64) {
                self.0 ^= v;
                self.0 = self.0.wrapping_mul(FNV_PRIME);
            }
            fn cell(&mut self, c: Cell) {
                match c {
                    Cell::Ref(a) => (self.mix(1), self.mix(a as u64)),
                    Cell::Str(a) => (self.mix(2), self.mix(a as u64)),
                    Cell::Lis(a) => (self.mix(3), self.mix(a as u64)),
                    Cell::Con(atom) => (self.mix(4), self.mix(atom.0 as u64)),
                    Cell::Int(i) => (self.mix(5), self.mix(i as u64)),
                    Cell::Fun(atom, n) => (self.mix(6), self.mix((u64::from(atom.0) << 8) | n as u64)),
                    Cell::Code(a) => (self.mix(7), self.mix(a as u64)),
                    Cell::Uint(v) => (self.mix(8), self.mix(v as u64)),
                    Cell::Empty => (self.mix(9), ()),
                };
            }
        }
        let mem = &self.core.mem;
        let mut f = Fnv(0xcbf2_9ce4_8422_2325);
        for (w, wk) in self.workers.iter().enumerate() {
            for reg in [
                wk.p,
                wk.cp,
                wk.e,
                wk.b,
                wk.b0,
                wk.frozen_h,
                wk.frozen_local,
                wk.h,
                wk.hb,
                wk.stack_boundary,
                wk.s,
                wk.tr,
                wk.pdl,
                wk.pf,
                wk.local_top,
                wk.control_top,
                wk.goal_top,
            ] {
                f.mix(reg as u64);
            }
            f.mix(wk.num_args as u64);
            f.mix(match wk.mode {
                Mode::Read => 0,
                Mode::Write => 1,
            });
            match wk.status {
                WorkerStatus::Running => f.mix(0),
                WorkerStatus::WaitingAtPcall { addr, pf } => {
                    f.mix(1);
                    f.mix(addr as u64);
                    f.mix(pf as u64);
                }
                WorkerStatus::Cancelling { pf } => {
                    f.mix(2);
                    f.mix(pf as u64);
                }
                WorkerStatus::Idle => f.mix(3),
                WorkerStatus::Stopped => f.mix(4),
            }
            for &(pf, slot) in &wk.pending_cancels {
                f.mix(pf as u64);
                f.mix(slot as u64);
            }
            for gc in &wk.goal_contexts {
                for reg in [
                    gc.marker,
                    gc.pf,
                    gc.entry_pf,
                    gc.slot,
                    gc.entry_b,
                    gc.entry_tr,
                    gc.entry_h,
                    gc.entry_local_top,
                    gc.prev_cp,
                    gc.entry_e,
                    gc.prev_hb,
                    gc.prev_stack_boundary,
                ] {
                    f.mix(reg as u64);
                }
                f.mix(match gc.resume {
                    Resume::ToWait { addr } => 1 | (u64::from(addr) << 3),
                    Resume::ToCancel { pf } => 2 | (u64::from(pf) << 3),
                    Resume::Idle => 3,
                });
                f.mix(gc.stolen as u64);
            }
            for x in &wk.x {
                f.cell(*x);
            }
            let board = self.core.boards[w].lock().unwrap();
            f.mix(board.goal_top as u64);
            f.mix(board.msg_top as u64);
            f.mix(board.pending_messages as u64);
            for &frame in &board.goal_frames {
                f.mix(frame as u64);
            }
            for &(pf, slot) in &board.cancel_requests {
                f.mix(pf as u64);
                f.mix(slot as u64);
            }
            let msg_top = board.msg_top;
            drop(board);
            for (area, top) in [
                (Area::Heap, wk.h),
                (Area::LocalStack, wk.local_top),
                (Area::ControlStack, wk.control_top),
                (Area::Trail, wk.tr),
                (Area::GoalStack, wk.goal_top),
                (Area::Pdl, wk.pdl),
                (Area::MessageBuffer, msg_top),
            ] {
                for addr in mem.map.area_base(w, area)..top {
                    f.cell(mem.read_untraced(addr));
                }
            }
        }
        f.0
    }

    /// Verify the structural invariants of every worker's Stack Set: all
    /// tops inside their areas, the choice-point chain well-formed and its
    /// saved state inside the owning areas, trail entries pointing at
    /// bindable words, and Goal-Stack boards consistent.  Scheduling (and
    /// in particular goal stealing plus the backtracking that undoes a
    /// stolen goal) must preserve all of these between rounds; the
    /// goal-steal property tests call this after every round, and the
    /// relaxed-mode stress tests after every run.
    ///
    /// Reads memory untraced only, so checking never perturbs statistics.
    pub fn check_consistency(&self) -> Result<(), String> {
        let map = &self.core.mem.map;
        for (w, wk) in self.workers.iter().enumerate() {
            let fail = |what: &str, detail: String| Err(format!("worker {w}: {what}: {detail}"));
            let within = |area: Area, addr: u32| -> bool {
                addr >= map.area_base(w, area) && addr <= map.area_end(w, area)
            };
            if !within(Area::Heap, wk.h) || wk.hb > wk.h {
                return fail("heap top", format!("h={} hb={}", wk.h, wk.hb));
            }
            if !within(Area::LocalStack, wk.local_top) {
                return fail("local top", format!("local_top={}", wk.local_top));
            }
            if !within(Area::ControlStack, wk.control_top) {
                return fail("control top", format!("control_top={}", wk.control_top));
            }
            if !within(Area::Trail, wk.tr) {
                return fail("trail top", format!("tr={}", wk.tr));
            }
            if !within(Area::GoalStack, wk.goal_top) {
                return fail("goal top", format!("goal_top={}", wk.goal_top));
            }
            if wk.e != NONE_ADDR && map.area_of(wk.e) != Area::LocalStack {
                return fail("environment register", format!("e={} outside any local stack", wk.e));
            }
            // The goal-frame board must point into this worker's own Goal
            // Stack, below the board's top.
            {
                let board = self.core.boards[w].lock().unwrap();
                if !within(Area::GoalStack, board.goal_top) {
                    return fail("goal board top", format!("goal_top={}", board.goal_top));
                }
                for &frame in &board.goal_frames {
                    if map.owner(frame) != w || map.area_of(frame) != Area::GoalStack {
                        return fail("goal frame board", format!("frame {frame} not in own goal stack"));
                    }
                    if frame >= board.goal_top {
                        return fail(
                            "goal frame board",
                            format!("frame {frame} above board top {}", board.goal_top),
                        );
                    }
                }
            }
            // Walk the choice-point chain: frames must live in this worker's
            // control stack, strictly descending, with saved state inside
            // the owning areas.
            let mut b = wk.b;
            let mut hops = 0u32;
            while b != NONE_ADDR {
                if map.owner(b) != w || map.area_of(b) != Area::ControlStack {
                    return fail("choice point", format!("b={b} not in own control stack"));
                }
                let nargs = match self.core.mem.read_untraced(b + choice::NARGS) {
                    Cell::Uint(n) => n,
                    other => return fail("choice point", format!("nargs at {b} is {other:?}")),
                };
                let tr = match self.core.mem.read_untraced(choice::saved_tr(b, nargs)) {
                    Cell::Uint(t) => t,
                    other => return fail("choice point", format!("saved tr at {b} is {other:?}")),
                };
                if !within(Area::Trail, tr) || tr > wk.tr {
                    return fail("choice point", format!("saved tr {tr} outside [base, tr={}]", wk.tr));
                }
                let h = match self.core.mem.read_untraced(choice::saved_h(b, nargs)) {
                    Cell::Uint(h) => h,
                    other => return fail("choice point", format!("saved h at {b} is {other:?}")),
                };
                if !within(Area::Heap, h) {
                    return fail("choice point", format!("saved h {h} outside own heap"));
                }
                let prev = match self.core.mem.read_untraced(choice::prev_b(b, nargs)) {
                    Cell::Uint(p) => p,
                    other => return fail("choice point", format!("prev b at {b} is {other:?}")),
                };
                if prev != NONE_ADDR && prev >= b {
                    return fail("choice point", format!("prev b {prev} not below {b}"));
                }
                b = prev;
                hops += 1;
                if hops > 1_000_000 {
                    return fail("choice point", "chain does not terminate".to_string());
                }
            }
            // Trail entries must name bindable words (heap or local stack of
            // some worker — cross-PE bindings are legal for stolen goals).
            let mut t = map.area_base(w, Area::Trail);
            while t < wk.tr {
                match self.core.mem.read_untraced(t) {
                    Cell::Uint(addr) => {
                        let area = map.area_of(addr);
                        if area != Area::Heap && area != Area::LocalStack {
                            return fail("trail entry", format!("{addr} is in the {}", area.name()));
                        }
                    }
                    other => return fail("trail entry", format!("at {t}: {other:?}")),
                }
                t += 1;
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Results
    // -----------------------------------------------------------------

    fn extract_answer(&self, syms: &SymbolTable) -> EngineResult<Vec<(String, Term)>> {
        if self.core.mem.shared_read(board::STATUS) != Cell::Uint(board::STATUS_SUCCEEDED) {
            return Ok(Vec::new());
        }
        let env_addr = self.core.mem.shared_read(board::ANSWER_ENV).expect_uint("board answer env");
        let mut out = Vec::new();
        for (name, slot) in &self.core.program.query_vars {
            let addr = env::y_addr(env_addr, *slot);
            let term = extract_binding(&self.core.mem, addr, syms)?;
            out.push((name.clone(), term));
        }
        Ok(out)
    }

    fn collect_stats(&self) -> RunStats {
        let workers: Vec<WorkerStats> = self
            .workers
            .iter()
            .map(|w| WorkerStats {
                instructions: w.instructions,
                idle_cycles: w.idle_cycles,
                max_usage: w.max_usage(),
                goals_stolen: w.goals_stolen,
                steal_notices: w.steal_notices,
                cancel_notices: w.cancel_notices,
                goals_aborted: w.goals_aborted,
                goals_while_cancelling: w.goals_while_cancelling,
                steal_attempts: w.steal_attempts,
                backoff_yields: w.backoff_yields,
                backoff_parks: w.backoff_parks,
                park_micros: w.park_micros,
                batch_exits_budget: w.batch_exits_budget,
                batch_exits_park: w.batch_exits_park,
            })
            .collect();
        let area_stats = self.core.mem.merged_stats();
        let predicate_profile = self.collect_predicate_profile();
        RunStats {
            num_workers: self.workers.len(),
            instructions: self.core.steps(),
            data_refs: area_stats.total.total(),
            reads: area_stats.total.reads,
            writes: area_stats.total.writes,
            elapsed_cycles: self.core.cycles.load(Ordering::Relaxed),
            parcalls: self.core.parcalls.load(Ordering::Relaxed),
            parallel_goals: self.core.parallel_goals.load(Ordering::Relaxed),
            goals_actually_parallel: self.core.goals_actually_parallel.load(Ordering::Relaxed),
            inferences: self.core.inferences.load(Ordering::Relaxed),
            parcall_failures: self.core.parcall_failures.load(Ordering::Relaxed),
            parcalls_cancelled: self.core.parcalls_cancelled.load(Ordering::Relaxed),
            goals_cancelled: self.core.goals_cancelled.load(Ordering::Relaxed),
            cancel_requests: self.core.cancel_requests.load(Ordering::Relaxed),
            area_stats,
            workers,
            predicate_profile,
        }
    }

    /// Merge the workers' per-predicate instruction attribution and label
    /// it with resolved names.  Read-only: the run still to be charged on
    /// each worker (`Worker::prof_residual`) is added without flushing, so
    /// this is safe to call between batches (cursor stats) as well as
    /// after completion.
    fn collect_predicate_profile(&self) -> Vec<(String, u64)> {
        if self.core.config.classic_dispatch {
            // The classic path carries no profiling hooks (it is the MLIPS
            // gate's uninstrumented baseline); the workers' untouched
            // attribution state would mis-report everything as `$query`.
            return Vec::new();
        }
        let mut by_addr: HashMap<u32, u64> = HashMap::new();
        for w in &self.workers {
            for (addr, count) in w.prof_counts.iter().enumerate() {
                if *count != 0 {
                    *by_addr.entry(addr as u32).or_default() += count;
                }
            }
            let (pred, run) = w.prof_residual();
            if run != 0 {
                *by_addr.entry(pred).or_default() += run;
            }
        }
        let program = self.core.program;
        let mut out: Vec<(String, u64)> = by_addr
            .into_iter()
            .map(|(addr, count)| {
                let label = program.predicate_label_at(addr).unwrap_or_else(|| {
                    // The only attribution keys that are not predicate
                    // entry points are the query body itself and (after a
                    // deep failure) code reached by restored continuations.
                    if addr >= program.query_start {
                        "$query".to_string()
                    } else {
                        match program.predicate_containing(addr) {
                            Some((_, arity)) => format!("@{addr}/{arity}"),
                            None => format!("@{addr}"),
                        }
                    }
                });
                (label, count)
            })
            .collect();
        // Collapse duplicate labels (several keys can resolve to `$query`).
        out.sort();
        out.dedup_by(|(bn, bc), (an, ac)| {
            if an == bn {
                *ac += *bc;
                true
            } else {
                false
            }
        });
        out.sort_by(|(an, ac), (bn, bc)| bc.cmp(ac).then_with(|| an.cmp(bn)));
        out
    }
}

impl<'a, 'p> Step<'a, 'p> {
    /// This worker's index.
    #[inline]
    pub(crate) fn w(&self) -> usize {
        self.wk.id as usize
    }

    // -----------------------------------------------------------------
    // Own-arena fast-path accessors
    // -----------------------------------------------------------------
    //
    // When the memory is in serial mode with tracing off ([`Memory::fast`]),
    // accesses that land in this worker's own Stack Set skip the arena
    // dispatch entirely: the word moves through [`Memory::serial_read`] /
    // [`Memory::serial_write`] and the reference is *counted* in the
    // worker-local [`crate::trace::RefDelta`], which `flush_ref_delta`
    // folds back into the arena's counters at batch boundaries.  Aggregate
    // statistics are identical to unbatched accounting (the access itself
    // still happens at the same point in the instruction stream); with
    // tracing on the fast path is disabled and every access takes the fully
    // recorded path, so traces are byte-for-byte unchanged.

    /// Whether `addr` lies in this worker's own Stack Set.
    #[inline(always)]
    fn own_addr(&self, addr: u32) -> bool {
        addr >= self.wk.heap_base && addr < self.wk.arena_end
    }

    /// Read one word, through the unrecorded own-arena path when available.
    #[inline(always)]
    pub(crate) fn mem_read(&mut self, addr: u32, object: ObjectKind) -> Cell {
        if self.core.mem.fast() && self.own_addr(addr) {
            debug_assert_eq!(self.core.mem.map.area_of(addr), object.area());
            self.wk.ref_delta.count(object, false);
            self.core.mem.serial_read(self.wk.id as usize, addr - self.wk.heap_base)
        } else {
            self.core.mem.read(self.wk.id, addr, object)
        }
    }

    /// Write one word, through the unrecorded own-arena path when available.
    #[inline(always)]
    pub(crate) fn mem_write(&mut self, addr: u32, value: Cell, object: ObjectKind) {
        if self.core.mem.fast() && self.own_addr(addr) {
            debug_assert_eq!(self.core.mem.map.area_of(addr), object.area());
            self.wk.ref_delta.count(object, true);
            self.core.mem.serial_write(self.wk.id as usize, addr - self.wk.heap_base, value);
        } else {
            self.core.mem.write(self.wk.id, addr, value, object);
        }
    }

    /// Classify an address *known to lie in this worker's own arena* by the
    /// object kind of its area — the register-resident counterpart of
    /// [`EngineCore::object_for_addr`], comparing against the worker's
    /// cached area boundaries instead of dividing through the address map.
    #[inline(always)]
    pub(crate) fn own_object_kind(&self, addr: u32) -> ObjectKind {
        debug_assert!(self.own_addr(addr));
        let wk = &*self.wk;
        if addr < wk.local_base {
            ObjectKind::HeapTerm
        } else if addr < wk.control_base {
            ObjectKind::EnvPermVar
        } else if addr < wk.trail_base {
            ObjectKind::Marker
        } else if addr < wk.pdl_base {
            ObjectKind::TrailEntry
        } else if addr < wk.goal_base {
            ObjectKind::PdlEntry
        } else if addr < wk.msg_base {
            ObjectKind::GoalFrame
        } else {
            ObjectKind::Message
        }
    }

    /// Classify a data address as [`EngineCore::object_for_addr`] would,
    /// taking the boundary-register path for own-arena addresses.
    #[inline(always)]
    pub(crate) fn object_for_addr(&self, addr: u32) -> ObjectKind {
        if self.own_addr(addr) {
            self.own_object_kind(addr)
        } else {
            self.core.object_for_addr(addr)
        }
    }

    /// Bounds-check a stack top against a worker-cached area end (the same
    /// check as [`Memory::check_top`], without recomputing the end from the
    /// address map).
    #[inline(always)]
    pub(crate) fn check_cached_top(&self, end: u32, area: Area, addr: u32) -> EngineResult<()> {
        debug_assert_eq!(end, self.core.mem.map.area_end(self.w(), area));
        if addr >= end {
            Err(EngineError::OutOfMemory { worker: self.w(), area })
        } else {
            Ok(())
        }
    }

    /// Fold this worker's deferred fast-path reference counts into its
    /// arena's counters (no-op when nothing is deferred).
    #[inline]
    pub(crate) fn flush_ref_delta(&mut self) {
        if self.wk.ref_delta.total != 0 {
            self.core.mem.flush_delta(self.wk.id as usize, &mut self.wk.ref_delta);
        }
    }

    /// Drop the cached topmost-environment words.  Called wherever `E` is
    /// restored from saved state (choice-point restore, goal wind-down):
    /// the cache only ever describes the environment the worker itself
    /// just allocated, so any other transition simply falls back to real
    /// frame reads.
    #[inline(always)]
    pub(crate) fn invalidate_env_cache(&mut self) {
        self.wk.env_cache_e = NONE_ADDR;
    }

    /// Give this worker one slot: `quantum` instructions when running, one
    /// scheduling action when idle or waiting.  Returns `true` if the worker
    /// made progress.  A no-op once the query has finished.
    pub(crate) fn run_slot(&mut self) -> EngineResult<bool> {
        if self.core.halted() {
            return Ok(false);
        }
        match self.wk.status {
            WorkerStatus::Stopped => Ok(false),
            WorkerStatus::Running => {
                self.exec_batch(self.core.config.quantum)?;
                Ok(true)
            }
            WorkerStatus::Idle => {
                self.wk.idle_cycles += 1;
                self.try_dispatch_work(Resume::Idle)
            }
            WorkerStatus::WaitingAtPcall { addr, pf } => {
                self.wk.idle_cycles += 1;
                // Shadow check: has the Parcall Frame completed (or begun
                // failing, which the wait answers with cancellation)?  The
                // actual (traced) reads happen when the worker re-executes
                // the pcall_wait instruction.
                let n = self.core.mem.read_untraced(pf + parcall::NGOALS).expect_uint("pcall ngoals");
                let done =
                    self.core.mem.read_untraced(pf + parcall::COMPLETED).expect_uint("pcall completed");
                let status = self.core.mem.read_untraced(pf + parcall::STATUS).expect_uint("pcall status");
                if done >= n || status == parcall::STATUS_FAILED {
                    self.wk.p = addr;
                    self.wk.status = WorkerStatus::Running;
                    Ok(true)
                } else {
                    self.try_dispatch_work(Resume::ToWait { addr })
                }
            }
            WorkerStatus::Cancelling { pf } => {
                self.wk.idle_cycles += 1;
                // Shadow check, as for `WaitingAtPcall`: once every goal of
                // the cancelled frame has committed (completed, failed,
                // aborted or retracted), resume the deferred backtrack.
                let n = self.core.mem.read_untraced(pf + parcall::NGOALS).expect_uint("pcall ngoals");
                let done =
                    self.core.mem.read_untraced(pf + parcall::COMPLETED).expect_uint("pcall completed");
                if done >= n {
                    self.finish_cancellation(pf)?;
                    Ok(true)
                } else {
                    // The drain can take arbitrarily long (an in-flight
                    // stolen goal only honours its `cancel_goal` at a batch
                    // boundary, and may legitimately run to completion), so
                    // a cancelling parent is not condemned to spin: it
                    // steals goals from *other* PEs meanwhile, exactly like
                    // an idle worker.  See `try_dispatch_work` for why only
                    // stolen (never own-board) goals are safe here.
                    self.try_dispatch_work(Resume::ToCancel { pf })
                }
            }
        }
    }

    /// Execute up to `max` instructions while the worker stays `Running` and
    /// the query unfinished, flushing the executed count into the shared
    /// step counter once at the end.  Returns the number executed.
    ///
    /// Dispatches through the flattened pre-decoded fast path by default;
    /// `EngineConfig::classic_dispatch` selects the original enum-fetch
    /// loop (the MLIPS gate's same-machine baseline).
    pub(crate) fn exec_batch(&mut self, max: u32) -> EngineResult<u32> {
        if self.core.steps() > self.core.config.max_steps {
            return Err(EngineError::StepLimitExceeded { limit: self.core.config.max_steps });
        }
        // `cancel_goal` requests are honoured at batch boundaries — the
        // machine state is between instructions, so aborting an in-flight
        // stolen goal here is exactly a goal failure at a clean point.
        // Requests that were not safely abortable when they arrived stay in
        // `pending_cancels` and are re-checked here until the goal either
        // becomes the innermost activity (and aborts) or commits.
        if self.core.cancel_flags[self.w()].load(Ordering::Acquire) || !self.wk.pending_cancels.is_empty() {
            self.process_cancel_requests()?;
        }
        if self.core.config.classic_dispatch {
            self.exec_batch_classic(max)
        } else {
            self.exec_batch_flat(max)
        }
    }

    /// The classic (pre-flattening) execution loop: enum fetch through
    /// `exec_instr`, `wk.p` written back after every instruction.
    fn exec_batch_classic(&mut self, max: u32) -> EngineResult<u32> {
        let mut n = 0u32;
        let result = loop {
            if n >= max || self.wk.status != WorkerStatus::Running || self.core.halted() {
                break Ok(());
            }
            self.wk.instructions += 1;
            n += 1;
            if let Err(e) = self.exec_instr() {
                break Err(e);
            }
        };
        if n > 0 {
            self.core.steps.fetch_add(n as u64, Ordering::Relaxed);
        }
        result.map(|_| n)
    }

    // -----------------------------------------------------------------
    // Goal scheduling
    // -----------------------------------------------------------------

    /// Try to find a Goal Frame for this worker (own Goal Stack first, then
    /// — for *idle* workers — steal round-robin) and start executing it.
    /// Returns `true` if work was dispatched.
    ///
    /// A worker waiting at `pcall_wait` only picks up goals from its own
    /// board, as in the paper (stealing is how *idle* PEs find work).
    /// Letting waiting parents steal unrelated goals stacks foreign Stack
    /// Sections above their open Parcall Frames — with the leftmost branch
    /// executed inline the parent's board is often empty at the wait, and
    /// the resulting leapfrog chains were measured to inflate the
    /// local-stack high-water by ~30x on relaxed fib, far past what the
    /// program's own nesting ever needs.  Restricting steals to idle
    /// workers bounds every worker's stacks by its own subtree depth while
    /// keeping load balancing: each goal's owner can always execute it at
    /// its wait, and genuinely idle PEs still take anything.
    ///
    /// The frame's words are read *while the victim's board lock is held*:
    /// once the lock drops, the owner may pop further frames and push new
    /// ones over the recovered space, so a later read could observe a
    /// half-written successor frame.  Pushes hold the same lock, which makes
    /// the image read atomic with respect to the Goal Stack's reuse.
    /// A *cancelling* parent ([`Resume::ToCancel`]) is the mirror image: it
    /// only **steals**, never pops its own board.  Its own remaining frames
    /// belong to outer Parcall Frames of its own clause, whose goals share
    /// permanent variables with the suspended failure state — executing one
    /// locally would interleave that goal's trail section with the
    /// deferred backtrack's untrail range, and the section cannot be
    /// discarded soundly on success (the bindings reach the parent's own
    /// cells).  A goal stolen from another PE binds only cells of an
    /// *independent* parcall's dataflow, so its successful Stack Section
    /// can be frozen in place (see `Worker::frozen_h`) and its trail
    /// section dropped without the deferred backtrack ever observing it.
    pub(crate) fn try_dispatch_work(&mut self, resume: Resume) -> EngineResult<bool> {
        let w = self.w();
        let core = self.core;
        // Own goal stack first (fast local path: no Marker, no message) —
        // except under `ToCancel`, per above.
        let own = if matches!(resume, Resume::ToCancel { .. }) {
            None
        } else {
            let mut b = core.boards[w].lock().unwrap();
            if let Some(frame) = b.goal_frames.pop() {
                b.goal_top = frame;
                Some(self.read_goal_frame(frame))
            } else {
                None
            }
        };
        if let Some(img) = own {
            self.wk.goal_top = img.frame;
            self.start_goal(img, resume, false)?;
            return Ok(true);
        }
        if matches!(resume, Resume::ToWait { .. }) {
            return Ok(false);
        }
        // Steal from another worker (round-robin over victims).  One scan
        // over every victim counts as one attempt; `goals_stolen` below
        // counts the attempts that found work.
        self.wk.steal_attempts += 1;
        let n = core.boards.len();
        for i in 0..n {
            let victim = (core.steal_cursor.load(Ordering::Relaxed) + i) % n;
            if victim == w {
                continue;
            }
            let stolen = {
                let mut b = core.boards[victim].lock().unwrap();
                if let Some(frame) = b.goal_frames.pop() {
                    b.goal_top = frame;
                    Some(self.read_goal_frame(frame))
                } else {
                    None
                }
            };
            if let Some(img) = stolen {
                core.steal_cursor.store((victim + 1) % n, Ordering::Relaxed);
                self.wk.goals_stolen += 1;
                core.steal_logs[w].lock().unwrap().push(StealEvent { thief: w, victim, frame: img.frame });
                self.start_goal(img, resume, true)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Read a Goal Frame's words (and copy its arguments into the argument
    /// registers), producing the image `start_goal` consumes.  Callers hold
    /// the owning board's lock.
    fn read_goal_frame(&mut self, frame: u32) -> GoalFrameImage {
        let pe = self.wk.id;
        let mem = &self.core.mem;
        let code = mem.read(pe, frame + goal_frame::CODE, ObjectKind::GoalFrame).expect_code("goal code");
        let arity = mem.read(pe, frame + goal_frame::ARITY, ObjectKind::GoalFrame).expect_uint("goal arity");
        let pf = mem.read(pe, frame + goal_frame::PF, ObjectKind::GoalFrame).expect_uint("goal pf");
        let slot = mem.read(pe, frame + goal_frame::SLOT, ObjectKind::GoalFrame).expect_uint("goal slot");
        for i in 0..arity {
            let c = mem.read(pe, goal_frame::arg(frame, i), ObjectKind::GoalFrame);
            self.wk.x[(i + 1) as usize] = c;
        }
        GoalFrameImage { frame, code, arity, pf, slot }
    }

    /// Begin executing the goal stored in the Goal Frame at `frame`.
    ///
    /// `stolen` distinguishes goals taken from another worker's Goal Stack
    /// from goals the owner picks up itself.  Stolen goals get the full
    /// treatment (Marker on the thief's Control stack, executing-PE record
    /// in the Parcall Frame, completion message to the parent); local goals
    /// take the cheap path, which is where the original system's low
    /// parallelism overhead for not-actually-parallel goals comes from.
    fn start_goal(&mut self, img: GoalFrameImage, resume: Resume, stolen: bool) -> EngineResult<()> {
        let w = self.w();
        let pe = self.wk.id;
        let mem = &self.core.mem;
        let GoalFrameImage { frame: _, code, arity, pf, slot } = img;

        // Record the pick-up in the Parcall Frame (atomically: under the
        // relaxed backend several PEs may grab goals of one parcall at
        // once).
        mem.rmw_uint(pe, pf + parcall::TO_SCHEDULE, ObjectKind::ParcallCount, |v| v.saturating_sub(1))?;
        if stolen {
            // The executing-PE word goes first: a cancelling parent that
            // observes `SLOT_TAKEN` must also observe a valid executor id
            // for its `cancel_goal` request (relaxed backend).
            mem.write(pe, parcall::slot_pe(pf, slot), Cell::Uint(w as u32), ObjectKind::ParcallGlobal);
            mem.write(
                pe,
                parcall::slot_status(pf, slot),
                Cell::Uint(parcall::SLOT_TAKEN),
                ObjectKind::ParcallGlobal,
            );
        }

        self.core.parallel_goals.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.core.goals_actually_parallel.fetch_add(1, Ordering::Relaxed);
        }
        if matches!(resume, Resume::ToCancel { .. }) {
            self.wk.goals_while_cancelling += 1;
        }
        self.core.inferences.fetch_add(1, Ordering::Relaxed);

        let wk = &*self.wk;
        let (b, tr, h, local_top, e, cp, hb, sb, entry_pf) =
            (wk.b, wk.tr, wk.h, wk.local_top, wk.e, wk.cp, wk.hb, wk.stack_boundary, wk.pf);

        // Stolen goals push a Marker delimiting the new Stack Section.
        let marker_addr = if stolen {
            let m = wk.control_top;
            mem.check_top(w, Area::ControlStack, m + marker::SIZE)?;
            mem.write(pe, m + marker::KIND, Cell::Uint(marker::KIND_GOAL), ObjectKind::Marker);
            mem.write(pe, m + marker::PF, Cell::Uint(pf), ObjectKind::Marker);
            mem.write(pe, m + marker::SLOT, Cell::Uint(slot), ObjectKind::Marker);
            mem.write(pe, m + marker::ENTRY_B, Cell::Uint(b), ObjectKind::Marker);
            mem.write(pe, m + marker::ENTRY_TR, Cell::Uint(tr), ObjectKind::Marker);
            mem.write(pe, m + marker::ENTRY_H, Cell::Uint(h), ObjectKind::Marker);
            mem.write(pe, m + marker::ENTRY_LOCAL_TOP, Cell::Uint(local_top), ObjectKind::Marker);
            mem.write(pe, m + marker::ENTRY_E, Cell::Uint(e), ObjectKind::Marker);
            self.wk.control_top = m + marker::SIZE;
            m
        } else {
            NONE_ADDR
        };

        let ctx = GoalContext {
            marker: marker_addr,
            pf,
            entry_pf,
            slot,
            entry_b: b,
            entry_tr: tr,
            entry_h: h,
            entry_local_top: local_top,
            prev_cp: cp,
            entry_e: e,
            prev_hb: hb,
            prev_stack_boundary: sb,
            resume,
            stolen,
        };
        let wk = &mut *self.wk;
        wk.goal_contexts.push(ctx);
        // Goal bodies start at a fresh predicate: move the profiling
        // attribution key along with the program counter.
        wk.prof_switch(code);
        wk.cp = self.core.program.goal_success_addr;
        wk.num_args = arity as u8;
        wk.b0 = wk.b;
        wk.p = code;
        wk.hb = wk.h;
        wk.stack_boundary = wk.local_top;
        wk.status = WorkerStatus::Running;
        wk.update_high_water();
        Ok(())
    }

    /// Commit a parallel goal's completion (success or failure) to the
    /// Parcall Frame: notify the parent over its Message Buffer when the
    /// goal was stolen, and atomically bump the completion counter.
    ///
    /// Under [`DeterminismMode::Strict`] the commit order is the reference
    /// order (completion counter first, then the message), preserving the
    /// golden traces; under [`DeterminismMode::Relaxed`] the counter
    /// increment comes *last*, so a parent that sees the counter reach its
    /// target also sees every effect of the goal.  Both orders record the
    /// same reference multiset — only the interleaving differs.
    fn commit_completion(&mut self, stolen: bool, pf: u32, slot: u32, msg_kind: u32) -> EngineResult<()> {
        let w = self.w();
        let pe = self.wk.id;
        let mem = &self.core.mem;
        let notify_parent = |step: &Step<'a, 'p>| -> EngineResult<()> {
            if stolen {
                let parent = step
                    .core
                    .mem
                    .read(pe, pf + parcall::PARENT_PE, ObjectKind::ParcallLocal)
                    .expect_uint("parent pe") as usize;
                if parent != w {
                    step.post_message(parent, msg_kind, pf, slot)?;
                }
            }
            Ok(())
        };
        if self.core.config.determinism == DeterminismMode::Relaxed {
            // Cross-PE commit: message first, counter increment last.
            notify_parent(self)?;
            mem.rmw_uint(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount, |v| v + 1)?;
        } else {
            mem.rmw_uint(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount, |v| v + 1)?;
            notify_parent(self)?;
        }
        Ok(())
    }

    /// Executed when a parallel goal's continuation returns (the
    /// `goal_success` stub): record completion via [`Step::commit_completion`]
    /// and resume scheduling.
    pub(crate) fn finish_goal_success(&mut self) -> EngineResult<()> {
        let pe = self.wk.id;
        let ctx = self
            .wk
            .goal_contexts
            .pop()
            .ok_or_else(|| EngineError::Internal("goal_success with no goal in progress".into()))?;
        let mem = &self.core.mem;
        let (pf, slot) = if ctx.stolen {
            // Re-read the Marker (pf, slot) as the real machine would, record
            // the completed slot and notify the parent.
            let pf = mem.read(pe, ctx.marker + marker::PF, ObjectKind::Marker).expect_uint("marker pf");
            let slot = mem.read(pe, ctx.marker + marker::SLOT, ObjectKind::Marker).expect_uint("marker slot");
            mem.write(
                pe,
                parcall::slot_status(pf, slot),
                Cell::Uint(parcall::SLOT_DONE),
                ObjectKind::ParcallGlobal,
            );
            (pf, slot)
        } else {
            (ctx.pf, ctx.slot)
        };

        self.commit_completion(ctx.stolen, pf, slot, message::KIND_DONE)?;

        let wk = &mut *self.wk;
        wk.cp = ctx.prev_cp;
        wk.e = ctx.entry_e;
        wk.env_cache_e = NONE_ADDR; // E restored from the goal context
        wk.hb = ctx.prev_hb;
        wk.stack_boundary = ctx.prev_stack_boundary;
        wk.pf = ctx.entry_pf;
        // Parallel goals commit to their first solution: choice points the
        // goal created are discarded on success.  Leaving them live would
        // let a later failure backtrack *into* a completed parallel goal,
        // whose Parcall/Goal-Frame bookkeeping (completion counters, slot
        // statuses, reclaimed frames) is not re-wound by the choice-point
        // machinery — re-entering such a choice point acts on dead state.
        // Deterministic goals (every registry benchmark's CGE bodies) leave
        // no choice points behind, so for them this is a no-op.
        wk.b = ctx.entry_b;
        wk.cp_top = NONE_ADDR;
        match ctx.resume {
            Resume::ToWait { addr } => {
                wk.p = addr;
                wk.status = WorkerStatus::Running;
            }
            Resume::ToCancel { pf } => {
                // The goal succeeded while this worker's own state is a
                // suspended failure.  Its results belong to another Parcall
                // Frame but live in *our* Stack Set, above the suspended
                // state — freeze them: the deferred backtrack's restore
                // targets are clamped to these floors so the section
                // survives, and the goal's trail entries are dropped so the
                // backtrack never unbinds the frozen result (every entry in
                // the section points into the independent parcall's
                // dataflow, never into our own failing branch).
                wk.frozen_h = wk.frozen_h.max(wk.h);
                wk.frozen_local = wk.frozen_local.max(wk.local_top);
                wk.tr = ctx.entry_tr;
                wk.status = WorkerStatus::Cancelling { pf };
            }
            Resume::Idle => {
                wk.status = WorkerStatus::Idle;
            }
        }
        self.recede_control_top();
        Ok(())
    }

    /// A parallel goal failed: recover the storage of its Stack Section,
    /// mark the Parcall Frame as failed and commit the completion via
    /// [`Step::commit_completion`].
    pub(crate) fn fail_goal(&mut self) -> EngineResult<()> {
        self.unwind_goal(false)
    }

    /// Like [`Step::fail_goal`], but for a goal aborted by a `cancel_goal`
    /// request: the slot and message record the cancellation instead of a
    /// logical failure.  Either way the goal commits through the completion
    /// protocol, which is what keeps the cancelling parent's drain sound.
    fn abort_goal(&mut self) -> EngineResult<()> {
        self.wk.goals_aborted += 1;
        self.unwind_goal(true)
    }

    fn unwind_goal(&mut self, cancelled: bool) -> EngineResult<()> {
        let pe = self.wk.id;
        let ctx = self
            .wk
            .goal_contexts
            .pop()
            .ok_or_else(|| EngineError::Internal("goal failure with no goal in progress".into()))?;
        let (pf, slot) = (ctx.pf, ctx.slot);
        let mem = &self.core.mem;
        if ctx.stolen {
            // Re-read the Marker, as the real machine recovers the Stack
            // Section through it.
            let m = ctx.marker;
            let _ = mem.read(pe, m + marker::PF, ObjectKind::Marker);
            let _ = mem.read(pe, m + marker::SLOT, ObjectKind::Marker);
            let _ = mem.read(pe, m + marker::ENTRY_TR, ObjectKind::Marker);
            let _ = mem.read(pe, m + marker::ENTRY_H, ObjectKind::Marker);
            let _ = mem.read(pe, m + marker::ENTRY_LOCAL_TOP, ObjectKind::Marker);
            let _ = mem.read(pe, m + marker::ENTRY_E, ObjectKind::Marker);
        }

        // Undo the goal's bindings and recover its storage.
        self.untrail_to(ctx.entry_tr)?;
        {
            let wk = &mut *self.wk;
            // Entry tops are clamped to the frozen floors: a goal started
            // before a `ToCancel` success froze a section would otherwise
            // reclaim it here.  (Goals started *after* the freeze have
            // entry tops at or above the floors, making this a no-op.)
            wk.h = ctx.entry_h.max(wk.frozen_h);
            wk.local_top = ctx.entry_local_top.max(wk.frozen_local);
            wk.e = ctx.entry_e;
            wk.env_cache_e = NONE_ADDR; // E restored from the goal context
            wk.b = ctx.entry_b;
            wk.cp_top = NONE_ADDR;
            wk.cp = ctx.prev_cp;
            wk.hb = ctx.prev_hb;
            wk.stack_boundary = ctx.prev_stack_boundary;
            wk.pf = ctx.entry_pf;
            if ctx.stolen {
                wk.control_top = ctx.marker; // the marker itself is recovered
            }
        }

        // Mark the Parcall Frame.  The status merge is a `max`: plain
        // failure never downgrades a frame already under cancellation, and
        // concurrent writers (relaxed backend) cannot lose each other's
        // update because `rmw_uint` holds the arena lock.
        let mem = &self.core.mem;
        let (slot_mark, msg_kind, status_mark) = if cancelled {
            (parcall::SLOT_CANCELLED, message::KIND_CANCELLED, parcall::STATUS_CANCELLED)
        } else {
            (parcall::SLOT_FAILED, message::KIND_FAILED, parcall::STATUS_FAILED)
        };
        if ctx.stolen {
            mem.write(pe, parcall::slot_status(pf, slot), Cell::Uint(slot_mark), ObjectKind::ParcallGlobal);
        }
        mem.rmw_uint(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal, |v| v.max(status_mark))?;
        self.commit_completion(ctx.stolen, pf, slot, msg_kind)?;

        let wk = &mut *self.wk;
        match ctx.resume {
            Resume::ToWait { addr } => {
                wk.p = addr;
                wk.status = WorkerStatus::Running;
            }
            Resume::ToCancel { pf: parent_pf } => {
                // Failure path: the goal's whole Stack Section was just
                // unwound, so there is nothing to freeze — re-park and keep
                // waiting for the cancelled frame to drain.
                wk.status = WorkerStatus::Cancelling { pf: parent_pf };
            }
            Resume::Idle => {
                wk.status = WorkerStatus::Idle;
            }
        }
        Ok(())
    }

    /// Write a completion/failure message into `parent`'s Message Buffer.
    /// The parent's board lock is held across slot allocation *and* the word
    /// writes, so concurrent posters can never interleave on one slot.
    fn post_message(&self, parent: usize, kind: u32, pf: u32, slot: u32) -> EngineResult<()> {
        let pe = self.wk.id;
        let base = self.core.mem.map.area_base(parent, Area::MessageBuffer);
        let size = self.core.mem.map.config.message_words;
        let mut board = self.core.boards[parent].lock().unwrap();
        let mut top = board.msg_top;
        if top + message::SIZE > base + size {
            top = base; // wrap the circular buffer
        }
        self.core.mem.write(pe, top + message::KIND, Cell::Uint(kind), ObjectKind::Message);
        self.core.mem.write(pe, top + message::PF, Cell::Uint(pf), ObjectKind::Message);
        self.core.mem.write(pe, top + message::SLOT, Cell::Uint(slot), ObjectKind::Message);
        board.msg_top = top + message::SIZE;
        board.pending_messages += 1;
        Ok(())
    }

    /// Consume this worker's pending completion messages (called when a
    /// Parcall Frame completes), generating the corresponding read traffic.
    pub(crate) fn consume_messages(&mut self) {
        let w = self.w();
        let pe = self.wk.id;
        let mut board = self.core.boards[w].lock().unwrap();
        let pending = board.pending_messages;
        if pending == 0 {
            return;
        }
        let mut addr = board.msg_top;
        for _ in 0..pending {
            // Read back the most recent messages (newest first); the values
            // only matter for the reference trace.
            addr = addr.saturating_sub(message::SIZE).max(self.wk.msg_base);
            let _ = self.core.mem.read(pe, addr + message::KIND, ObjectKind::Message);
            let _ = self.core.mem.read(pe, addr + message::PF, ObjectKind::Message);
            let _ = self.core.mem.read(pe, addr + message::SLOT, ObjectKind::Message);
        }
        board.pending_messages = 0;
    }

    // -----------------------------------------------------------------
    // Choice points and backtracking
    // -----------------------------------------------------------------

    /// Push a choice point whose next alternative is the code address
    /// `next_clause`.
    pub(crate) fn push_choice_point(&mut self, next_clause: u32) -> EngineResult<()> {
        let nargs = self.wk.num_args as u32;
        let b = self.wk.control_top;
        self.check_cached_top(self.wk.control_end, Area::ControlStack, b + choice::size(nargs))?;
        self.mem_write(b + choice::NARGS, Cell::Uint(nargs), ObjectKind::ChoicePoint);
        for i in 0..nargs {
            let v = self.wk.x[(i + 1) as usize];
            self.mem_write(choice::arg(b, i), v, ObjectKind::ChoicePoint);
        }
        let wk = &*self.wk;
        let (e, cp, prev_b, tr, h, pf, local_top, b0) =
            (wk.e, wk.cp, wk.b, wk.tr, wk.h, wk.pf, wk.local_top, wk.b0);
        self.mem_write(choice::saved_e(b, nargs), Cell::Uint(e), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_cp(b, nargs), Cell::Code(cp), ObjectKind::ChoicePoint);
        self.mem_write(choice::prev_b(b, nargs), Cell::Uint(prev_b), ObjectKind::ChoicePoint);
        self.mem_write(choice::next_clause(b, nargs), Cell::Code(next_clause), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_tr(b, nargs), Cell::Uint(tr), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_h(b, nargs), Cell::Uint(h), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_pf(b, nargs), Cell::Uint(pf), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_local_top(b, nargs), Cell::Uint(local_top), ObjectKind::ChoicePoint);
        self.mem_write(choice::saved_b0(b, nargs), Cell::Uint(b0), ObjectKind::ChoicePoint);
        let wk = &mut *self.wk;
        wk.b = b;
        wk.hb = wk.h;
        wk.stack_boundary = wk.local_top;
        wk.control_top = b + choice::size(nargs);
        wk.cp_top = wk.control_top;
        wk.update_high_water();
        Ok(())
    }

    /// Restore machine state from the current choice point and continue at
    /// its next-alternative address (the retry/trust driver instruction).
    fn restore_from_choice_point(&mut self) -> EngineResult<()> {
        let b = self.wk.b;
        let nargs = self.mem_read(b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        for i in 0..nargs {
            let v = self.mem_read(choice::arg(b, i), ObjectKind::ChoicePoint);
            self.wk.x[(i + 1) as usize] = v;
        }
        let e = self.mem_read(choice::saved_e(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp e");
        let cp = self.mem_read(choice::saved_cp(b, nargs), ObjectKind::ChoicePoint).expect_code("cp cp");
        let bp = self.mem_read(choice::next_clause(b, nargs), ObjectKind::ChoicePoint).expect_code("cp bp");
        let tr = self.mem_read(choice::saved_tr(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp tr");
        let h = self.mem_read(choice::saved_h(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp h");
        let pf = self.mem_read(choice::saved_pf(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp pf");
        let lt =
            self.mem_read(choice::saved_local_top(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp lt");
        let b0 = self.mem_read(choice::saved_b0(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp b0");
        self.untrail_to(tr)?;
        // `E` is being restored from saved state, not from this worker's own
        // allocation path — the topmost-environment cache no longer
        // describes it.
        self.invalidate_env_cache();
        let wk = &mut *self.wk;
        wk.num_args = nargs as u8;
        wk.e = e;
        wk.cp = cp;
        // Restore targets are clamped to the frozen floors (sections of
        // `ToCancel` goals that succeeded during a cancellation): the saved
        // tops predate the frozen section, and restoring below it would
        // reclaim results an independent Parcall Frame still references.
        // Outside cancellation the floors sit at the area bases and the
        // clamp is the identity.
        let h = h.max(wk.frozen_h);
        let lt = lt.max(wk.frozen_local);
        wk.h = h;
        wk.hb = h;
        wk.pf = pf;
        wk.local_top = lt;
        wk.stack_boundary = lt;
        wk.b0 = b0;
        wk.p = bp;
        wk.cp_top = b + choice::size(nargs);
        Ok(())
    }

    /// Discard the current choice point (executed by `trust` / cut).
    pub(crate) fn pop_choice_point(&mut self) -> EngineResult<()> {
        let b = self.wk.b;
        let nargs = self.mem_read(b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        let prev = self.mem_read(choice::prev_b(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp prev");
        self.wk.b = prev;
        self.wk.cp_top = NONE_ADDR; // recomputed lazily by recede_control_top
        self.refresh_backtrack_boundaries()?;
        self.recede_control_top();
        Ok(())
    }

    /// After B changed (cut / trust / the parcall's first-solution commit),
    /// refresh the `hb` / `stack_boundary` trailing boundaries from the new
    /// current choice point.
    pub(crate) fn refresh_backtrack_boundaries(&mut self) -> EngineResult<()> {
        let b = self.wk.b;
        // With no choice point left, the failure boundary is the enclosing
        // parallel goal's *entry* state (what `start_goal` set), or the
        // area bases outside any goal.  The entry values matter: using the
        // worker's current `hb`/`stack_boundary` here would freeze a
        // boundary raised by a since-discarded choice point — e.g. the
        // clause-selection point of an inline `fib(1)` leaf — below which
        // no environment or Parcall Frame could ever be reclaimed again,
        // leaking local stack proportional to the call tree.
        let (goal_hb, goal_sb) = match self.wk.goal_contexts.last() {
            Some(c) => (c.entry_h, c.entry_local_top),
            None => (self.wk.heap_base, self.wk.local_base),
        };
        if b == NONE_ADDR {
            let wk = &mut *self.wk;
            wk.hb = goal_hb.max(wk.frozen_h).min(wk.h);
            wk.stack_boundary = goal_sb.max(wk.frozen_local).min(wk.local_top);
            return Ok(());
        }
        let nargs = self.mem_read(b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        let h = self.mem_read(choice::saved_h(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp h");
        let lt =
            self.mem_read(choice::saved_local_top(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp lt");
        let wk = &mut *self.wk;
        // Clamped like the restore targets: bindings into a frozen section
        // must be trailed (the section is never reclaimed wholesale), and a
        // backtrack can only restore tops down to the floor.
        wk.hb = h.max(wk.frozen_h);
        wk.stack_boundary = lt.max(wk.frozen_local);
        Ok(())
    }

    /// Recover Control-stack space if the discarded frames were topmost.
    pub(crate) fn recede_control_top(&mut self) {
        let wk = &*self.wk;
        let marker_top = wk
            .goal_contexts
            .iter()
            .rev()
            .find(|c| c.stolen)
            .map(|c| c.marker + marker::SIZE)
            .unwrap_or(wk.control_base);
        let b_top = if wk.b == NONE_ADDR {
            wk.control_base
        } else if wk.cp_top != NONE_ADDR {
            // Fast path: the frame extent is cached in the worker's
            // register file (set by `push_choice_point` / the previous
            // recomputation), so the hot success path touches no memory.
            debug_assert_eq!(
                wk.cp_top,
                wk.b + choice::size(
                    self.core.mem.read_untraced(wk.b + choice::NARGS).expect_uint("cp nargs")
                )
            );
            wk.cp_top
        } else {
            // The frame's true extent comes from its saved argument count —
            // an untraced host-side read: `num_args` may have changed since
            // the frame was pushed, and a shorter bound would let the next
            // push clobber the live frame's saved fields.  Cache it: `b`
            // only changes through sites that refresh or invalidate
            // `cp_top`, so the value stays good until the next cut/pop.
            let nargs = self.core.mem.read_untraced(wk.b + choice::NARGS).expect_uint("cp nargs");
            let top = wk.b + choice::size(nargs);
            self.wk.cp_top = top;
            top
        };
        let wk = &*self.wk;
        let new_top = marker_top.max(b_top).max(wk.control_base);
        if new_top < wk.control_top {
            self.wk.control_top = new_top;
        }
    }

    /// Undo trailed bindings down to `target`.
    pub(crate) fn untrail_to(&mut self, target: u32) -> EngineResult<()> {
        while self.wk.tr > target {
            self.wk.tr -= 1;
            let taddr = self.wk.tr;
            let addr = self.mem_read(taddr, ObjectKind::TrailEntry).expect_uint("trail entry");
            let obj = self.object_for_addr(addr);
            self.mem_write(addr, Cell::Ref(addr), obj);
        }
        Ok(())
    }

    /// Handle a failure on this worker: either the current parallel goal
    /// fails, the whole query fails, or we backtrack into the most recent
    /// choice point.
    ///
    /// Before the failure target is restored, backward execution runs: if
    /// the restore would cross an *incomplete* Parcall Frame on this
    /// worker's `PF` chain (the parent of an inline CGE branch failing
    /// before `pcall_wait`), the frame is cancelled — un-stolen Goal Frames
    /// retracted, `cancel_goal` sent after in-flight ones — and the
    /// backtrack is deferred until the frame's completion counter drains.
    pub(crate) fn backtrack(&mut self) -> EngineResult<()> {
        self.backtrack_with(true)
    }

    /// The body of [`Step::backtrack`].  `record_failure` is true for an
    /// original failure and false when `finish_cancellation` resumes a
    /// deferred one, so `parcall_failures` counts each logical failure
    /// exactly once — at its originating backtrack, whether it then fails
    /// a goal, restores a choice point, or fails the query.
    fn backtrack_with(&mut self, record_failure: bool) -> EngineResult<()> {
        let b = self.wk.b;
        let at_goal_boundary = self.wk.goal_contexts.last().map(|c| c.entry_b == b).unwrap_or(false);
        let mut crossing = false;
        if self.wk.pf != NONE_ADDR {
            // Where would this failure leave the PF register?  Restoring a
            // choice point rewinds it to the frame open when the choice
            // point was pushed; failing a parallel goal rewinds it to the
            // goal-entry value; failing the query abandons the whole chain.
            let target_pf = if at_goal_boundary {
                self.wk.goal_contexts.last().map(|c| c.entry_pf).unwrap_or(NONE_ADDR)
            } else if b == NONE_ADDR {
                NONE_ADDR
            } else {
                let nargs = self.core.mem.read_untraced(b + choice::NARGS).expect_uint("cp nargs");
                self.core.mem.read_untraced(choice::saved_pf(b, nargs)).expect_uint("cp pf")
            };
            crossing = self.wk.pf != target_pf;
            if crossing {
                if record_failure {
                    self.core.parcall_failures.fetch_add(1, Ordering::Relaxed);
                }
                if self.begin_parcall_cancellation(target_pf)? {
                    // Deferred: the worker is now `Cancelling`; the failure
                    // resumes from `finish_cancellation` once the frame
                    // drains.
                    return Ok(());
                }
            }
        }
        if at_goal_boundary {
            if record_failure && !crossing {
                self.core.parcall_failures.fetch_add(1, Ordering::Relaxed);
            }
            return self.fail_goal();
        }
        if b == NONE_ADDR {
            self.core.mem.shared_write(board::STATUS, Cell::Uint(board::STATUS_FAILED));
            self.core.set_finished(false);
            self.wk.status = WorkerStatus::Stopped;
            return Ok(());
        }
        self.restore_from_choice_point()
    }

    /// Walk this worker's Parcall-Frame chain from `PF` down to (exclusive)
    /// `target_pf`, cancelling every incomplete frame on the way: retract
    /// its un-stolen Goal Frames, post `cancel_goal` for the in-flight
    /// stolen ones, and account the retractions so the completion counter
    /// still converges to `NGOALS`.  Returns `true` when some frame still
    /// has goals in flight — the worker is parked in
    /// [`WorkerStatus::Cancelling`] and the caller's failure is deferred —
    /// and `false` once every frame down to the target has fully drained.
    fn begin_parcall_cancellation(&mut self, target_pf: u32) -> EngineResult<bool> {
        let pe = self.wk.id;
        let mut pf = self.wk.pf;
        while pf != target_pf && pf != NONE_ADDR {
            let status =
                self.core.mem.read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal).expect_uint("status");
            let n =
                self.core.mem.read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal).expect_uint("ngoals");
            let done = self
                .core
                .mem
                .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
                .expect_uint("completed");
            if done < n {
                if status != parcall::STATUS_CANCELLED {
                    self.cancel_parcall_frame(pf)?;
                }
                let done = self
                    .core
                    .mem
                    .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
                    .expect_uint("completed");
                if done < n {
                    self.wk.status = WorkerStatus::Cancelling { pf };
                    return Ok(true);
                }
            }
            self.consume_messages();
            pf = self
                .core
                .mem
                .read(pe, pf + parcall::PREV_PF, ObjectKind::ParcallLocal)
                .expect_uint("prev pf");
        }
        Ok(false)
    }

    /// Cancel one Parcall Frame: mark it, retract its un-stolen Goal Frames
    /// from this worker's board (each is accounted as completed so the
    /// counter still converges), and post a `cancel_goal` request to the
    /// executor of every in-flight stolen slot.  In-flight goals are never
    /// abandoned: they drain through the completion protocol, either by
    /// finishing normally or by aborting at the executor's next batch
    /// boundary.
    pub(crate) fn cancel_parcall_frame(&mut self, pf: u32) -> EngineResult<()> {
        let pe = self.wk.id;
        let w = self.w();
        let mem = &self.core.mem;
        mem.rmw_uint(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal, |v| {
            v.max(parcall::STATUS_CANCELLED)
        })?;
        self.core.parcalls_cancelled.fetch_add(1, Ordering::Relaxed);

        // Retract the frame's un-stolen Goal Frames under the board lock
        // (which serialises against thieves popping concurrently): once the
        // lock drops, every remaining goal of this frame is either already
        // committed or in an executor's hands.
        let mut retracted = 0u32;
        {
            let mut board = self.core.boards[w].lock().unwrap();
            let mut kept = Vec::with_capacity(board.goal_frames.len());
            for &frame in board.goal_frames.iter() {
                let frame_pf =
                    mem.read(pe, frame + goal_frame::PF, ObjectKind::GoalFrame).expect_uint("goal pf");
                if frame_pf == pf {
                    let slot =
                        mem.read(pe, frame + goal_frame::SLOT, ObjectKind::GoalFrame).expect_uint("slot");
                    mem.write(
                        pe,
                        parcall::slot_status(pf, slot),
                        Cell::Uint(parcall::SLOT_CANCELLED),
                        ObjectKind::ParcallGlobal,
                    );
                    retracted += 1;
                } else {
                    kept.push(frame);
                }
            }
            board.goal_frames = kept;
            board.goal_top = match board.goal_frames.last() {
                Some(&top) => {
                    let arity =
                        mem.read(pe, top + goal_frame::ARITY, ObjectKind::GoalFrame).expect_uint("arity");
                    top + goal_frame::size(arity)
                }
                None => self.wk.goal_base,
            };
            self.wk.goal_top = board.goal_top;
        }
        for _ in 0..retracted {
            mem.rmw_uint(pe, pf + parcall::TO_SCHEDULE, ObjectKind::ParcallCount, |v| v.saturating_sub(1))?;
            mem.rmw_uint(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount, |v| v + 1)?;
        }
        self.core.goals_cancelled.fetch_add(retracted as u64, Ordering::Relaxed);

        // `cancel_goal` for every in-flight stolen slot.  Slots are written
        // lazily, so an untouched word means the goal was never stolen
        // (pending — just retracted — or executed by this worker through
        // the local path).
        let n = mem.read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal).expect_uint("ngoals");
        for k in 0..n {
            let status = mem.read(pe, parcall::slot_status(pf, k), ObjectKind::ParcallGlobal);
            if status != Cell::Uint(parcall::SLOT_TAKEN) {
                continue;
            }
            let executor = mem
                .read(pe, parcall::slot_pe(pf, k), ObjectKind::ParcallGlobal)
                .expect_uint("slot pe") as usize;
            if executor == w {
                continue; // cannot happen: own goals take the local path
            }
            {
                let mut board = self.core.boards[executor].lock().unwrap();
                board.cancel_requests.push((pf, k));
            }
            self.core.cancel_flags[executor].store(true, Ordering::Release);
            self.core.cancel_requests.fetch_add(1, Ordering::Relaxed);
            self.core.cancel_logs[w].lock().unwrap().push(CancelEvent {
                canceller: w,
                executor,
                pf,
                slot: k,
            });
        }
        Ok(())
    }

    /// A cancelled frame has fully drained: re-read its counters as the
    /// real machine would, consume the completion messages, and resume the
    /// deferred backtrack (which may immediately cancel the next frame on
    /// the chain).
    fn finish_cancellation(&mut self, pf: u32) -> EngineResult<()> {
        let pe = self.wk.id;
        let _ = self.core.mem.read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal);
        let _ = self.core.mem.read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount);
        self.consume_messages();
        self.wk.status = WorkerStatus::Running;
        // Resuming the *same* logical failure: don't re-count it.
        self.backtrack_with(false)
    }

    /// Drain this worker's `cancel_goal` requests.  A request is honoured —
    /// the goal aborted through [`Step::abort_goal`] — only when the named
    /// goal is the worker's *innermost* activity, it has no Parcall Frame
    /// of its own still open (`PF` back at the goal-entry value), **and**
    /// the live frame at that address confirms the abort: its status is
    /// cancelled and its slot still records this worker as the taken
    /// executor.  The confirmation closes an ABA hole — a stale request
    /// naming a frame address that was freed and re-allocated must not
    /// kill the healthy goal of the new incarnation (whose status is OK).
    ///
    /// A request whose target is still live on this worker's context stack
    /// but **not** safely abortable right now — the goal called deeper
    /// work, opened its own Parcall Frame, or the worker is mid-transition
    /// — is *kept pending* and re-checked at every subsequent batch
    /// boundary until the goal either becomes abortable or commits.
    /// (Dropping it, as this function used to, let the doomed goal run to
    /// completion whenever the request arrived at an unlucky boundary.)
    /// Only requests with no matching live context (the goal already
    /// committed, or the address was recycled) are discarded.
    fn process_cancel_requests(&mut self) -> EngineResult<()> {
        let w = self.w();
        let pe = self.wk.id;
        let mut requests = std::mem::take(&mut self.wk.pending_cancels);
        if self.core.cancel_flags[w].load(Ordering::Acquire) {
            let mut board = self.core.boards[w].lock().unwrap();
            self.core.cancel_flags[w].store(false, Ordering::Release);
            requests.extend(std::mem::take(&mut board.cancel_requests));
        }
        for (pf, slot) in requests {
            let live = self.wk.goal_contexts.iter().any(|c| c.stolen && c.pf == pf && c.slot == slot);
            if !live {
                continue; // committed (or recycled address): nothing to abort
            }
            let ctx_matches = match self.wk.goal_contexts.last() {
                Some(c) => c.stolen && c.pf == pf && c.slot == slot && self.wk.pf == c.entry_pf,
                None => false,
            };
            if !ctx_matches || self.wk.status != WorkerStatus::Running {
                self.wk.pending_cancels.push((pf, slot));
                continue;
            }
            // The matching context pins the frame live (its parent cannot
            // pass the drain while this goal is uncommitted), so these
            // words are valid whatever incarnation the request came from.
            let mem = &self.core.mem;
            let status = mem.read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal).expect_uint("status");
            let slot_status = mem
                .read(pe, parcall::slot_status(pf, slot), ObjectKind::ParcallGlobal)
                .expect_uint("slot status");
            if status != parcall::STATUS_CANCELLED || slot_status != parcall::SLOT_TAKEN {
                continue;
            }
            // Safe to read only behind a TAKEN status (the thief writes its
            // id first; a PENDING slot's executor word is uninitialised).
            let slot_pe =
                mem.read(pe, parcall::slot_pe(pf, slot), ObjectKind::ParcallGlobal).expect_uint("slot pe");
            if slot_pe as usize == w {
                self.abort_goal()?;
            }
        }
        Ok(())
    }

    /// Called by the `halt` builtin: the query succeeded.  The answer
    /// location is published on the query board in the shared region, where
    /// any PE (or the host) can read it, *before* the finished flag flips,
    /// so every observer of the flag sees the answer.
    pub(crate) fn query_succeeded(&mut self) {
        self.core.mem.shared_write(board::STATUS, Cell::Uint(board::STATUS_SUCCEEDED));
        self.core.mem.shared_write(board::ANSWER_PE, Cell::Uint(self.w() as u32));
        self.core.mem.shared_write(board::ANSWER_ENV, Cell::Uint(self.wk.e));
        self.core.set_finished(true);
        self.wk.status = WorkerStatus::Stopped;
    }

    /// Execute a `call_host`: flip the machine RUNNING→SUSPENDED so every
    /// driver winds down at this instruction boundary, record the call for
    /// [`Engine::resume`], and point this worker's `p` at the continuation.
    ///
    /// Returns `false` on a lost race (another worker succeeded, failed or
    /// suspended first): the caller must leave `p` at the `call_host`
    /// instruction so it re-executes when (if) control ever comes back —
    /// re-execution is idempotent because the argument registers are
    /// untouched.  The inference is counted only on the winning path for
    /// the same reason.
    pub(crate) fn suspend_host(&mut self, host: u32, arity: u8, cont: u32) -> bool {
        if self
            .core
            .finished
            .compare_exchange(RUNNING, SUSPENDED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let args: Vec<Cell> = (1..=arity as usize).map(|i| self.wk.x[i]).collect();
        *self.core.pending_host.lock().unwrap() = Some(PendingHostCall { worker: self.w(), host, args });
        self.core.inferences.fetch_add(1, Ordering::Relaxed);
        self.wk.p = cont;
        true
    }

    /// Build a source-level [`Term`] on this worker's heap, for unifying a
    /// host predicate's output bindings into the machine.  Variables are
    /// memoized by name in `memo` so one [`HostResult::Succeed`] reply
    /// shares variables across its bindings.
    pub(crate) fn build_term(
        &mut self,
        term: &Term,
        memo: &mut std::collections::HashMap<String, Cell>,
    ) -> EngineResult<Cell> {
        match term {
            Term::Int(i) => Ok(Cell::Int(*i)),
            Term::Atom(a) => Ok(Cell::Con(*a)),
            Term::Var(name) => {
                if let Some(&cell) = memo.get(name) {
                    return Ok(cell);
                }
                let cell = self.new_heap_var()?;
                memo.insert(name.clone(), cell);
                Ok(cell)
            }
            Term::Struct(f, args) if *f == known::DOT && args.len() == 2 => {
                let head = self.build_term(&args[0], memo)?;
                let tail = self.build_term(&args[1], memo)?;
                let p = self.heap_push(head)?;
                self.heap_push(tail)?;
                Ok(Cell::Lis(p))
            }
            Term::Struct(f, args) if args.is_empty() => Ok(Cell::Con(*f)),
            Term::Struct(f, args) => {
                let mut cells = Vec::with_capacity(args.len());
                for arg in args {
                    cells.push(self.build_term(arg, memo)?);
                }
                let p = self.heap_push(Cell::Fun(*f, args.len() as u8))?;
                for cell in cells {
                    self.heap_push(cell)?;
                }
                Ok(Cell::Str(p))
            }
        }
    }
}
