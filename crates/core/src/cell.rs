//! Tagged data cells.
//!
//! Every word of the RAP-WAM data areas holds one tagged cell.  The tag set
//! is the classic WAM one (REF/STR/LIS/CON/INT plus functor cells) extended
//! with raw code addresses and unsigned counters used by control frames
//! (environments, choice points, Parcall Frames, Markers, Goal Frames).
//!
//! Rust stores a cell in 16 bytes; conceptually each cell occupies one
//! machine word, and the memory-performance experiments count *words*, so the
//! host representation does not affect any reported ratio.

use pwam_front::atoms::Atom;
use serde::{Deserialize, Serialize};

/// The value stored in one word of a data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cell {
    /// A reference cell.  An *unbound variable* is a `Ref` whose target is
    /// its own address; a bound variable points at another cell.
    Ref(u32),
    /// Pointer to a functor cell ([`Cell::Fun`]) followed by the arguments.
    Str(u32),
    /// Pointer to a cons pair (two consecutive cells: head, tail).
    Lis(u32),
    /// An atomic constant.
    Con(Atom),
    /// An integer constant.
    Int(i64),
    /// A functor cell `f/n`; only ever stored on a heap, pointed to by `Str`.
    Fun(Atom, u8),
    /// A code address (stored in continuation slots, markers, goal frames).
    Code(u32),
    /// A raw unsigned value (frame sizes, counters, PE identifiers, saved
    /// stack tops, trail entries).
    Uint(u32),
    /// An uninitialised word.  Reading one is an engine bug and is reported
    /// as such.
    Empty,
}

/// Sentinel "null address" used for empty register values (no environment,
/// no choice point, no parcall frame).
pub const NONE_ADDR: u32 = u32::MAX;

impl Cell {
    /// True if the cell is a `Ref` pointing at `addr` itself (i.e. an
    /// unbound variable stored at `addr`).
    #[inline]
    pub fn is_unbound_at(self, addr: u32) -> bool {
        matches!(self, Cell::Ref(a) if a == addr)
    }

    /// True for the atomic cells (constants and integers).
    #[inline]
    pub fn is_atomic(self) -> bool {
        matches!(self, Cell::Con(_) | Cell::Int(_))
    }

    /// Extract a raw unsigned value, panicking with a clear message if the
    /// cell has the wrong tag (indicates a corrupted control frame).
    #[inline]
    pub fn expect_uint(self, what: &str) -> u32 {
        match self {
            Cell::Uint(v) => v,
            other => panic!("expected Uint cell for {what}, found {other:?}"),
        }
    }

    /// Extract a code address.
    #[inline]
    pub fn expect_code(self, what: &str) -> u32 {
        match self {
            Cell::Code(v) => v,
            other => panic!("expected Code cell for {what}, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_detection() {
        assert!(Cell::Ref(7).is_unbound_at(7));
        assert!(!Cell::Ref(7).is_unbound_at(8));
        assert!(!Cell::Int(7).is_unbound_at(7));
    }

    #[test]
    fn atomic_cells() {
        assert!(Cell::Int(1).is_atomic());
        assert!(Cell::Con(Atom(0)).is_atomic());
        assert!(!Cell::Ref(0).is_atomic());
        assert!(!Cell::Str(0).is_atomic());
    }

    #[test]
    fn expect_helpers() {
        assert_eq!(Cell::Uint(9).expect_uint("x"), 9);
        assert_eq!(Cell::Code(3).expect_code("x"), 3);
    }

    #[test]
    #[should_panic(expected = "expected Uint")]
    fn expect_uint_panics_on_wrong_tag() {
        let _ = Cell::Int(1).expect_uint("frame word");
    }
}
