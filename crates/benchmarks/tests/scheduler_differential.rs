//! Differential tests across the scheduler×determinism matrix, plus golden
//! fingerprints pinning the merged per-PE trace to the flat-memory trace of
//! the pre-sharding engine.
//!
//! * The strict Threaded backend (token ring) must produce *identical*
//!   answers, per-area/per-object reference counts, and merged traces as
//!   the reference Interleaved backend, on the extended suite (deriv, tak,
//!   qsort, matrix, boyer).
//! * The relaxed Threaded backend (free-running threads over owned arenas)
//!   must produce the *identical answer set* and the schedule-invariant
//!   work counters (parcalls, parallel goals, logical inferences), with
//!   exact steal-notice accounting.  Which goals take the stolen path is an
//!   actual race in relaxed mode, so the scheduling-artifact traffic
//!   (Markers, Messages, Parcall global slots) and the trace interleaving
//!   legitimately vary run to run — the strict backends remain the
//!   byte-exact reference for those.
//!
//! The worker count defaults to 4 and can be overridden with the
//! `PWAM_THREADS` environment variable (CI exercises exactly that knob, and
//! a dedicated relaxed-determinism job runs this suite at 2 and 8 threads).

use pwam_benchmarks::{benchmark, run_benchmark_with_session, validate, BenchmarkId, Scale};
use rapwam::session::QueryOptions;
use rapwam::{Area, DeterminismMode, MemRef, ObjectKind, SchedulerKind};

/// Worker count for the differential runs (`PWAM_THREADS`, default 4).
fn threads() -> usize {
    std::env::var("PWAM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

fn opts(scheduler: SchedulerKind) -> QueryOptions {
    QueryOptions { trace: true, ..QueryOptions::parallel(threads()).with_scheduler(scheduler) }
}

/// FNV-1a over every field of every reference, in trace order.
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

#[test]
fn interleaved_trace_matches_pre_sharding_goldens() {
    // (benchmark, workers, trace length, fingerprint).  The original
    // fingerprints were proven reference-for-reference identical to the
    // pre-sharding engine's flat-memory traces when the arenas landed;
    // they freeze the reference trace so any later drift in the sharded
    // memory, the seq-keyed merge, or the reference tagging fails this
    // test.  Regenerated (see `examples/trace_goldens.rs`) when the
    // last-goal-inline optimisation returned: the leftmost CGE branch now
    // runs inline on the parent (no Goal Frame traffic), the Parcall Frame
    // gained its ENTRY_B word, and `pcall_wait` reads it to commit the
    // parcall to its first solution — the *semantics* of that change were
    // pinned by the answer/count equalities of the rest of this suite (and
    // the inline-on/off differentials in `parcall_cancel_properties`)
    // before the fingerprints were refreshed.
    let goldens: [(BenchmarkId, usize, usize, u64); 6] = [
        (BenchmarkId::Deriv, 1, 1705, 0x00039f020862ae8b),
        (BenchmarkId::Deriv, 2, 1725, 0xb43083a3afa69624),
        (BenchmarkId::Deriv, 4, 1799, 0x17e6133e190bb124),
        (BenchmarkId::Qsort, 1, 7156, 0x848390a5f70a965f),
        (BenchmarkId::Qsort, 2, 7258, 0x3e11f48376def7bf),
        (BenchmarkId::Qsort, 4, 7406, 0x0a34a0ac7e187616),
    ];
    for (id, workers, len, fp) in goldens {
        let b = benchmark(id, Scale::Small);
        let o = QueryOptions { trace: true, ..QueryOptions::parallel(workers) };
        let (_, r) = run_benchmark_with_session(&b, &o).unwrap();
        let t = r.trace.expect("trace requested");
        assert_eq!(t.len(), len, "{} workers={workers}: trace length drifted", id.name());
        assert_eq!(
            fingerprint(&t),
            fp,
            "{} workers={workers}: merged per-PE trace is not byte-identical to the flat-memory trace",
            id.name()
        );
    }
}

#[test]
fn schedulers_agree_on_the_paper_suite() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let (si, ri) = run_benchmark_with_session(&b, &opts(SchedulerKind::Interleaved)).unwrap();
        let (st, rt) = run_benchmark_with_session(&b, &opts(SchedulerKind::Threaded)).unwrap();

        // Both backends must produce the benchmark's correct answer…
        validate(&b, &si, &ri).unwrap();
        validate(&b, &st, &rt).unwrap();
        // …and the *same* rendered answer set.
        let render = |s: &rapwam::Session, r: &rapwam::RunResult| -> Vec<(String, String)> {
            match &r.outcome {
                rapwam::Outcome::Success(bind) => {
                    bind.iter().map(|(n, t)| (n.clone(), s.render(t))).collect()
                }
                rapwam::Outcome::Failure => panic!("{} failed", id.name()),
            }
        };
        assert_eq!(render(&si, &ri), render(&st, &rt), "{}: answers differ", id.name());

        // Identical aggregate counts.
        assert_eq!(ri.stats.instructions, rt.stats.instructions, "{}: instructions", id.name());
        assert_eq!(ri.stats.data_refs, rt.stats.data_refs, "{}: total refs", id.name());
        assert_eq!(ri.stats.reads, rt.stats.reads, "{}: reads", id.name());
        assert_eq!(ri.stats.writes, rt.stats.writes, "{}: writes", id.name());
        assert_eq!(ri.stats.elapsed_cycles, rt.stats.elapsed_cycles, "{}: cycles", id.name());
        assert_eq!(
            ri.stats.goals_actually_parallel,
            rt.stats.goals_actually_parallel,
            "{}: goals in parallel",
            id.name()
        );

        // Identical per-area and per-object read/write counts.
        for area in Area::ALL {
            assert_eq!(
                ri.stats.area_stats.area(area),
                rt.stats.area_stats.area(area),
                "{}: {} counts differ",
                id.name(),
                area.name()
            );
        }
        for object in ObjectKind::ALL {
            assert_eq!(
                ri.stats.area_stats.object(object),
                rt.stats.area_stats.object(object),
                "{}: {} counts differ",
                id.name(),
                object.name()
            );
        }

        // Identical merged traces, reference for reference.
        let ti = ri.trace.expect("interleaved trace");
        let tt = rt.trace.expect("threaded trace");
        assert_eq!(ti.len(), tt.len(), "{}: trace lengths differ", id.name());
        assert_eq!(fingerprint(&ti), fingerprint(&tt), "{}: traces differ", id.name());

        // The Threaded backend must have delivered one steal notice per
        // stolen goal and one cancel notice per cancel_goal request over
        // its channels.
        let stolen: u64 = rt.stats.workers.iter().map(|w| w.goals_stolen).sum();
        let notices: u64 = rt.stats.workers.iter().map(|w| w.steal_notices).sum();
        assert_eq!(stolen, rt.stats.goals_actually_parallel, "{}: steal accounting", id.name());
        assert_eq!(notices, stolen, "{}: lost steal notices", id.name());
        let cancel_notices: u64 = rt.stats.workers.iter().map(|w| w.cancel_notices).sum();
        assert_eq!(cancel_notices, rt.stats.cancel_requests, "{}: lost cancel notices", id.name());
        assert_eq!(rt.stats.cancel_requests, ri.stats.cancel_requests, "{}: cancel requests", id.name());
    }
}

/// Answer/count equivalence across Strict×Relaxed×Interleaved on the
/// extended suite.  Relaxed mode guarantees the answer set and the
/// schedule-invariant work counters; it does *not* guarantee per-area
/// counts, because whether a goal is stolen (Markers, Messages, Parcall
/// global slots) or executed by its parent is an actual race — see the
/// module docs of `rapwam::sched`.
#[test]
fn relaxed_mode_agrees_on_answers_and_logical_work() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let (si, ri) = run_benchmark_with_session(&b, &opts(SchedulerKind::Interleaved)).unwrap();
        let relaxed_opts = QueryOptions { trace: false, ..opts(SchedulerKind::Threaded) }
            .with_determinism(DeterminismMode::Relaxed);
        let (sr, rr) = run_benchmark_with_session(&b, &relaxed_opts).unwrap();

        // Both must produce the benchmark's correct answer…
        validate(&b, &si, &ri).unwrap();
        validate(&b, &sr, &rr).unwrap();
        // …and the *same* rendered answer set.
        let render = |s: &rapwam::Session, r: &rapwam::RunResult| -> Vec<(String, String)> {
            match &r.outcome {
                rapwam::Outcome::Success(bind) => {
                    bind.iter().map(|(n, t)| (n.clone(), s.render(t))).collect()
                }
                rapwam::Outcome::Failure => panic!("{} failed", id.name()),
            }
        };
        assert_eq!(render(&si, &ri), render(&sr, &rr), "{}: answers differ", id.name());

        // Whether a program's parcalls ever *fail* is a logical property (a
        // CGE goal fails or it does not; independence makes that
        // schedule-free until a first failure exists), and without a
        // failure no schedule can trigger backward execution — so the
        // reference run's `parcall_failures` counter selects which
        // contract applies.  (Whether a given failure still finds its
        // frame incomplete — and therefore cancels — *is* timing, which is
        // why the selector keys on failures, not on cancellations, and on
        // the reference run, not the relaxed one.)
        if ri.stats.parcall_failures == 0 {
            // No parcall ever fails, hence no backward execution anywhere:
            // the same parcalls execute, every parallel goal is picked up
            // exactly once, and the logical inference count does not
            // depend on placement.
            assert_eq!(ri.stats.parcalls, rr.stats.parcalls, "{}: parcalls", id.name());
            assert_eq!(ri.stats.parallel_goals, rr.stats.parallel_goals, "{}: parallel goals", id.name());
            assert_eq!(ri.stats.inferences, rr.stats.inferences, "{}: inferences", id.name());
            assert_eq!(rr.stats.parcalls_cancelled, 0, "{}: relaxed-only cancellation", id.name());
        } else {
            // Backward execution ran (queens: failed candidates cancel
            // their sibling safety checks).  How much doomed work each
            // retraction skips — and how much an aborted in-flight goal had
            // already executed (including its own nested parcalls) —
            // depends on the race between failure and steal, so *no* work
            // counter is schedule-invariant here (with enough PEs even the
            // retraction count can be zero: every sibling is already stolen
            // by the time its parcall fails); the strict backends remain
            // the byte-exact reference, and this suite pins the answer set
            // plus the steal/cancel accounting below.
        }

        // Steal and cancel accounting stay exact even though placement is
        // racy: one notice reaches the victim/executor (or the final
        // reconciliation drain) per event.
        let stolen: u64 = rr.stats.workers.iter().map(|w| w.goals_stolen).sum();
        let notices: u64 = rr.stats.workers.iter().map(|w| w.steal_notices).sum();
        assert_eq!(stolen, rr.stats.goals_actually_parallel, "{}: steal accounting", id.name());
        assert_eq!(notices, stolen, "{}: lost steal notices", id.name());
        let cancel_notices: u64 = rr.stats.workers.iter().map(|w| w.cancel_notices).sum();
        assert_eq!(cancel_notices, rr.stats.cancel_requests, "{}: lost cancel notices", id.name());
    }
}

#[test]
fn threaded_backend_handles_failing_queries() {
    use rapwam::session::Session;
    let mut s = Session::new("p :- (q & r).\nq.\nr :- fail.").unwrap();
    let r = s.run("p", &QueryOptions::threaded(threads())).unwrap();
    assert_eq!(r.outcome, rapwam::Outcome::Failure);
}

#[test]
fn relaxed_backend_handles_failing_queries() {
    use rapwam::session::Session;
    let mut s = Session::new("p :- (q & r).\nq.\nr :- fail.").unwrap();
    let r = s.run("p", &QueryOptions::relaxed(threads())).unwrap();
    assert_eq!(r.outcome, rapwam::Outcome::Failure);
}

#[test]
fn relaxed_backend_reports_engine_errors() {
    use rapwam::session::Session;
    let mut s = Session::new("loop :- loop.").unwrap();
    let o = QueryOptions { max_steps: 10_000, ..QueryOptions::relaxed(threads()) };
    let err = s.run("loop", &o).unwrap_err();
    assert!(err.to_string().contains("step limit"), "unexpected error: {err}");
}

#[test]
fn threaded_backend_reports_engine_errors() {
    use rapwam::session::Session;
    let mut s = Session::new("loop :- loop.").unwrap();
    let o = QueryOptions { max_steps: 10_000, ..QueryOptions::threaded(threads()) };
    let err = s.run("loop", &o).unwrap_err();
    assert!(err.to_string().contains("step limit"), "unexpected error: {err}");
}

/// The flattened pre-decoded dispatch path (PR 6) must be observationally
/// pure: running the same benchmark through the classic enum-fetch loop
/// (`classic_dispatch`, always-locked arenas) and through the flat path
/// (dense stream, serial-arena fast path, cached instruction pointer) must
/// produce identical answers, aggregate counters, per-area counts, and
/// byte-identical merged traces — on both serialized backends.
#[test]
fn flat_dispatch_is_trace_identical_to_classic() {
    for id in [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort] {
        for scheduler in [SchedulerKind::Interleaved, SchedulerKind::Threaded] {
            let b = benchmark(id, Scale::Small);
            let flat_opts = opts(scheduler);
            let classic_opts = QueryOptions { classic_dispatch: true, ..flat_opts.clone() };
            let (sf, rf) = run_benchmark_with_session(&b, &flat_opts).unwrap();
            let (sc, rc) = run_benchmark_with_session(&b, &classic_opts).unwrap();

            validate(&b, &sf, &rf).unwrap();
            validate(&b, &sc, &rc).unwrap();
            let render = |s: &rapwam::Session, r: &rapwam::RunResult| -> Vec<(String, String)> {
                match &r.outcome {
                    rapwam::Outcome::Success(bind) => {
                        bind.iter().map(|(n, t)| (n.clone(), s.render(t))).collect()
                    }
                    rapwam::Outcome::Failure => panic!("{} failed", id.name()),
                }
            };
            assert_eq!(render(&sf, &rf), render(&sc, &rc), "{} {scheduler:?}: answers differ", id.name());

            assert_eq!(rf.stats.instructions, rc.stats.instructions, "{}: instructions", id.name());
            assert_eq!(rf.stats.inferences, rc.stats.inferences, "{}: inferences", id.name());
            assert_eq!(rf.stats.data_refs, rc.stats.data_refs, "{}: total refs", id.name());
            assert_eq!(rf.stats.elapsed_cycles, rc.stats.elapsed_cycles, "{}: cycles", id.name());
            for area in Area::ALL {
                assert_eq!(
                    rf.stats.area_stats.area(area),
                    rc.stats.area_stats.area(area),
                    "{} {scheduler:?}: {} counts differ",
                    id.name(),
                    area.name()
                );
            }
            for object in ObjectKind::ALL {
                assert_eq!(
                    rf.stats.area_stats.object(object),
                    rc.stats.area_stats.object(object),
                    "{} {scheduler:?}: {} counts differ",
                    id.name(),
                    object.name()
                );
            }

            let tf = rf.trace.expect("flat trace");
            let tc = rc.trace.expect("classic trace");
            assert_eq!(tf.len(), tc.len(), "{} {scheduler:?}: trace lengths differ", id.name());
            assert_eq!(
                fingerprint(&tf),
                fingerprint(&tc),
                "{} {scheduler:?}: flat dispatch drifted from the classic trace",
                id.name()
            );
        }
    }
}
