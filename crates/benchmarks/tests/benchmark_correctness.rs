//! Correctness of the benchmark registry (the paper's four programs plus
//! `boyer`) in every execution mode.
//!
//! Each benchmark (at `Scale::Small`) must produce the correct answer
//! sequentially (WAM) and in parallel (RAP-WAM) on several PE counts, and
//! the parallel run must actually use the parallel machinery.

use pwam_benchmarks::{benchmark, extended_benchmarks, runner, BenchmarkId, Scale};
use rapwam::session::QueryOptions;

fn check(id: BenchmarkId, options: &QueryOptions) {
    let b = benchmark(id, Scale::Small);
    let (session, result) = runner::run_benchmark_with_session(&b, options)
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", id.name()));
    runner::validate(&b, &session, &result).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn all_benchmarks_are_correct_sequentially() {
    for id in BenchmarkId::EXTENDED {
        check(id, &QueryOptions::sequential());
    }
}

#[test]
fn all_benchmarks_are_correct_on_one_parallel_worker() {
    for id in BenchmarkId::EXTENDED {
        check(id, &QueryOptions::parallel(1));
    }
}

#[test]
fn all_benchmarks_are_correct_on_four_workers() {
    for id in BenchmarkId::EXTENDED {
        check(id, &QueryOptions::parallel(4));
    }
}

#[test]
fn all_benchmarks_are_correct_on_eight_workers() {
    for id in BenchmarkId::EXTENDED {
        check(id, &QueryOptions::parallel(8));
    }
}

#[test]
fn parallel_runs_exercise_the_parallel_machinery() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let summary = runner::run_benchmark(&b, &QueryOptions::parallel(4)).unwrap();
        assert!(summary.result.stats.parcalls > 0, "{} did not execute any parallel call", id.name());
        assert!(
            summary.result.stats.goals_actually_parallel > 0,
            "{} never had a goal picked up by another PE",
            id.name()
        );
    }
}

#[test]
fn reference_counts_are_plausible_for_every_benchmark() {
    for b in extended_benchmarks(Scale::Small) {
        let summary = runner::run_benchmark(&b, &QueryOptions::sequential()).unwrap();
        let stats = &summary.result.stats;
        let rpi = stats.refs_per_instruction();
        assert!(rpi > 1.0 && rpi < 8.0, "{}: implausible references/instruction {rpi}", b.id.name());
        assert!(stats.instructions > 100, "{}: suspiciously few instructions", b.id.name());
    }
}

#[test]
fn parallel_work_matches_sequential_work_within_overhead_bounds() {
    // The RAP-WAM on one PE should perform the sequential work plus a modest
    // parallelism-management overhead (the paper reports ~15% for deriv).
    // With the last-goal-inline optimisation the leftmost branch of every
    // CGE runs on the parent without Goal-Frame traffic, and parcall
    // cancellation retracts the doomed siblings of a failed branch — so
    // even `queens` (generate-and-test, rejects most candidates) no longer
    // pays for speculative sibling work a sequential run short-circuits
    // past.  `fib` annotates every recursion level and stays the
    // fine-granularity worst case.  (The `overhead_gate` suite pins
    // per-benchmark *instruction* bounds; this is the coarse
    // reference-count sanity check.)
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let seq = runner::run_benchmark(&b, &QueryOptions::sequential()).unwrap();
        let par = runner::run_benchmark(&b, &QueryOptions::parallel(1)).unwrap();
        let ratio = par.result.stats.data_refs as f64 / seq.result.stats.data_refs as f64;
        let bound = if id == BenchmarkId::Fib { 1.7 } else { 1.5 };
        assert!(ratio >= 0.99, "{}: parallel work below sequential work ({ratio})", id.name());
        assert!(ratio < bound, "{}: overhead on one PE is implausibly high ({ratio})", id.name());
    }
}

#[test]
fn trace_collection_works_for_all_benchmarks() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let opts = QueryOptions::parallel(2).with_trace();
        let summary = runner::run_benchmark(&b, &opts).unwrap();
        let trace = summary.result.trace.expect("trace requested");
        assert_eq!(trace.len() as u64, summary.result.stats.data_refs);
    }
}

#[test]
fn boyer_is_correct_on_the_threaded_scheduler() {
    let b = benchmark(BenchmarkId::Boyer, Scale::Small);
    let (session, result) = runner::run_benchmark_with_session(&b, &QueryOptions::threaded(4)).unwrap();
    runner::validate(&b, &session, &result).unwrap();
    assert!(result.stats.goals_actually_parallel > 0, "boyer never had a goal stolen");
}

#[test]
fn boyer_rejects_a_non_theorem() {
    // Conjoin the theorem with a fresh variable v(9): and(F, v(9)) is
    // falsifiable (set v(9) to false), so the prover must answer `no`.
    let mut b = benchmark(BenchmarkId::Boyer, Scale::Small);
    b.query = "gen(4, F), rw(and(F, v(9)), W), norm(W, V), decide(V, R)".to_string();
    b.validation = runner::Validation::EqualsAtom { variable: "R".to_string(), expected: "no".to_string() };
    let (session, result) = runner::run_benchmark_with_session(&b, &QueryOptions::parallel(2)).unwrap();
    runner::validate(&b, &session, &result).unwrap();
}
