//! Differential suite for the reusable-engine paths of the serving layer:
//! a pooled engine — whether [`rapwam::Engine::reset`] on the same program
//! or rebuilt around recycled arenas via `Session::run_prepared_reusing` —
//! must be observationally identical to a fresh engine: byte-identical
//! answers, per-area/per-object reference counts, and merged traces.
//!
//! Covers the extended benchmark registry plus proptest-randomized
//! program/query pairs (including failing queries and backtracking-heavy
//! searches), because the reset path has to clear *everything* a previous
//! run could have left behind — a stale word, counter or trace record shows
//! up as a diff here.

use proptest::prelude::*;
use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use rapwam::session::{QueryOptions, Session};
use rapwam::{Area, Engine, MemRef, Memory, MemoryConfig, ObjectKind, Outcome, RunResult};

/// FNV-1a over every field of every reference, in trace order (the same
/// fingerprint the scheduler differential suite pins).
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

fn render_outcome(session: &Session, result: &RunResult) -> Vec<(String, String)> {
    match &result.outcome {
        Outcome::Success(b) => b.iter().map(|(n, t)| (n.clone(), session.render(t))).collect(),
        Outcome::Failure => vec![("__outcome".to_string(), "failure".to_string())],
    }
}

/// Assert two runs are observationally identical: rendered answers,
/// schedule counters, per-area/per-object counts, traces.
fn assert_identical(what: &str, session: &Session, fresh: &RunResult, reused: &RunResult) {
    assert_eq!(render_outcome(session, fresh), render_outcome(session, reused), "{what}: answers differ");
    assert_eq!(fresh.stats.instructions, reused.stats.instructions, "{what}: instructions differ");
    assert_eq!(fresh.stats.data_refs, reused.stats.data_refs, "{what}: total refs differ");
    assert_eq!(fresh.stats.elapsed_cycles, reused.stats.elapsed_cycles, "{what}: cycles differ");
    assert_eq!(fresh.stats.parcalls, reused.stats.parcalls, "{what}: parcalls differ");
    assert_eq!(fresh.stats.inferences, reused.stats.inferences, "{what}: inferences differ");
    for area in Area::ALL {
        assert_eq!(
            fresh.stats.area_stats.area(area),
            reused.stats.area_stats.area(area),
            "{what}: {} counts differ",
            area.name()
        );
    }
    for object in ObjectKind::ALL {
        assert_eq!(
            fresh.stats.area_stats.object(object),
            reused.stats.area_stats.object(object),
            "{what}: {} counts differ",
            object.name()
        );
    }
    match (&fresh.trace, &reused.trace) {
        (Some(f), Some(r)) => {
            assert_eq!(f.len(), r.len(), "{what}: trace lengths differ");
            assert_eq!(fingerprint(f), fingerprint(r), "{what}: traces differ");
        }
        (None, None) => {}
        _ => panic!("{what}: one run traced, the other did not"),
    }
}

fn small_opts(workers: usize) -> QueryOptions {
    QueryOptions { trace: true, memory: MemoryConfig::small(), ..QueryOptions::parallel(workers) }
}

#[test]
fn reset_engines_match_fresh_engines_on_the_registry() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let mut session = Session::new(&b.program).unwrap();
        let compiled = session.prepare(&b.query, true).unwrap();
        let opts = small_opts(4);
        let config = opts.engine_config();

        let fresh = session.run_prepared(&compiled, &opts).unwrap();

        // Run once, reset, run again: the second (reset) run must match a
        // fresh engine byte for byte.
        let engine = Engine::new(&compiled, config);
        let (_first, mut engine) = engine.run_reusable(session.symbols()).unwrap();
        engine.reset();
        let (reused, _) = engine.run_reusable(session.symbols()).unwrap();
        assert_identical(&format!("{} (reset)", id.name()), &session, &fresh, &reused);
    }
}

#[test]
fn recycled_memory_matches_fresh_engines_across_programs() {
    // Arenas recycled from a *different* program's run (the pool's warm
    // path) must be indistinguishable from fresh ones.
    let donor = benchmark(BenchmarkId::Tak, Scale::Small);
    let mut donor_session = Session::new(&donor.program).unwrap();
    let donor_compiled = donor_session.prepare(&donor.query, true).unwrap();
    let opts = small_opts(4);

    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let mut session = Session::new(&b.program).unwrap();
        let compiled = session.prepare(&b.query, true).unwrap();

        let fresh = session.run_prepared(&compiled, &opts).unwrap();

        let (_, donor_memory, _) = donor_session.run_prepared_reusing(&donor_compiled, &opts, None).unwrap();
        let (reused, _, warm) = session.run_prepared_reusing(&compiled, &opts, Some(donor_memory)).unwrap();
        assert!(warm, "{}: matching shapes must recycle the arenas", id.name());
        assert_identical(&format!("{} (recycled)", id.name()), &session, &fresh, &reused);
    }
}

#[test]
fn mismatched_memory_shapes_fall_back_to_cold_builds() {
    let b = benchmark(BenchmarkId::Deriv, Scale::Small);
    let mut session = Session::new(&b.program).unwrap();
    let compiled = session.prepare(&b.query, true).unwrap();
    let opts = small_opts(2);
    // Donor memory with a different worker count: shape mismatch.
    let donor = Memory::new(MemoryConfig::small(), 3, false);
    let (result, _, warm) = session.run_prepared_reusing(&compiled, &opts, Some(donor)).unwrap();
    assert!(!warm, "mismatched shapes must rebuild cold");
    assert!(result.outcome.is_success());
}

/// The randomized program family: nondeterministic `pick/3` searches under
/// a CGE, driven through failure and backtracking — the same family the
/// goal-steal property tests use, exercising trail/heap/board state that a
/// reset must fully clear.
const PROGRAM: &str = "\
    pick(X, [X|_]).\n\
    pick(X, [_|T]) :- pick(X, T).\n\
    good(X, L, K) :- pick(X, L), X > K.\n\
    both(A, B, L, K) :- (ground(L), ground(K) | good(A, L, K) & good(B, L, K)).\n\
    try(L, K, pair(A, B)) :- both(A, B, L, K).\n\
    try(_, _, none).";

fn render_list(items: &[i64]) -> String {
    let rendered: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A pooled, reset-and-reused engine produces byte-identical answers,
    /// per-area counts and traces to a fresh engine across randomized
    /// program/query pairs.
    #[test]
    fn reset_and_recycled_engines_match_fresh_across_random_queries(
        list in prop::collection::vec(-20i64..20, 1..8),
        k in -25i64..25,
        workers in 1usize..5,
    ) {
        let mut session = Session::new(PROGRAM).unwrap();
        let query = format!("try({}, {k}, R)", render_list(&list));
        let compiled = session.prepare(&query, true).unwrap();
        let opts = small_opts(workers);
        let config = opts.engine_config();

        let fresh = session.run_prepared(&compiled, &opts).unwrap();

        // Reset path: same engine, same program, pristine state.
        let engine = Engine::new(&compiled, config);
        let (_, mut engine) = engine.run_reusable(session.symbols()).unwrap();
        engine.reset();
        let (reset_run, engine) = engine.run_reusable(session.symbols()).unwrap();
        assert_identical("random query (reset)", &session, &fresh, &reset_run);

        // Recycled-arena path: tear down to the Memory, rebuild, rerun.
        let memory = engine.into_memory();
        let (recycled_run, _, warm) =
            session.run_prepared_reusing(&compiled, &opts, Some(memory)).unwrap();
        prop_assert!(warm, "matching shapes must recycle");
        assert_identical("random query (recycled)", &session, &fresh, &recycled_run);
    }
}
