//! The overhead-regression gate: RAP-WAM on one interleaved PE must stay
//! within a small constant factor of the sequential WAM on every registry
//! program — the paper's headline claim (~15% management overhead for
//! deriv), restored by the last-goal-inline optimisation and enforced here
//! so it cannot silently regress again.
//!
//! The CI `overhead-gate` job runs this suite on the full registry.

use pwam_benchmarks::overhead::{instruction_overhead_bound, measure};
use pwam_benchmarks::{BenchmarkId, Scale};

#[test]
fn registry_overhead_stays_within_bounds() {
    for id in BenchmarkId::EXTENDED {
        let report = measure(id, Scale::Small, true);
        let ratio = report.instruction_ratio();
        let bound = instruction_overhead_bound(id);
        println!(
            "{:>6}: instructions {:>8} (WAM) -> {:>8} (RAP-WAM 1 PE), ratio {:.3} (bound {:.2}), refs {:.3}",
            id.name(),
            report.seq_instructions,
            report.par_instructions,
            ratio,
            bound,
            report.ref_ratio(),
        );
        assert!(
            ratio >= 1.0,
            "{}: parallel mode cannot do less work than sequential ({ratio:.3})",
            id.name()
        );
        assert!(
            ratio <= bound,
            "{}: 1-PE instruction overhead {ratio:.3} exceeds the gate {bound:.2} — \
             the parallelism-management fast path regressed",
            id.name()
        );
    }
}

/// The headline pair the ISSUE pins explicitly, asserted by name so a bound
/// edit cannot quietly weaken them.
#[test]
fn headline_bounds_are_the_papers() {
    assert!(instruction_overhead_bound(BenchmarkId::Deriv) <= 1.30);
    assert!(instruction_overhead_bound(BenchmarkId::Fib) <= 1.80);
}

/// Turning the optimisation off must still produce correct answers (the
/// Goal-Frame-everywhere path stays testable), just with more overhead.
#[test]
fn inline_off_is_correct_but_slower() {
    for id in [BenchmarkId::Deriv, BenchmarkId::Fib] {
        let with_inline = measure(id, Scale::Small, true);
        let without = measure(id, Scale::Small, false);
        assert!(
            without.par_instructions > with_inline.par_instructions,
            "{}: inline execution should save instructions ({} !> {})",
            id.name(),
            without.par_instructions,
            with_inline.par_instructions,
        );
    }
}
