//! The MLIPS (raw instruction-throughput) regression gate for the
//! flattened dispatch loop.
//!
//! The gate is self-calibrating: it measures the *same* benchmark on the
//! *same* machine through both dispatch paths — the retained classic
//! enum-fetch loop with always-locked arenas (`classic_dispatch`), which is
//! the exact pre-flattening executor, and the flat path (dense pre-decoded
//! stream, serial-arena fast path, cached instruction pointer) — and
//! asserts the flat/classic speedup floor per benchmark.  Absolute MIPS
//! numbers vary by host; the ratio does not (both paths run back to back,
//! in-process, best-of-N with alternating rounds).
//!
//! The CI `mlips-gate` job runs the release `mlips_throughput` binary on
//! the full suite and uploads `BENCH_mlips.json`; this test enforces the
//! same floors in the ordinary test run on a reduced benchmark set so a
//! dispatch regression fails `cargo test` too.

use pwam_benchmarks::mlips::{compare_dispatch_paths, mlips_speedup_floor};
use pwam_benchmarks::{BenchmarkId, Scale};

#[test]
fn flat_dispatch_meets_per_benchmark_floors() {
    if cfg!(debug_assertions) {
        // The floors are properties of the *optimised* executor — without
        // inlining the per-opcode handlers the ratio measures nothing.
        // Debug runs still exercise the harness through the unit tests in
        // `pwam_benchmarks::mlips`; the floors are enforced by release
        // test runs and the CI `mlips-gate` job.
        eprintln!("skipping MLIPS floors in a debug build");
        return;
    }
    // The headline pair (tak and deriv), one guard benchmark (qsort), and
    // the goal-transition-heavy pair (queens and fib — dominated by
    // goal-finish/pickup boundaries, so they gate the driver-free
    // transitions specifically).  Paper scale: the runs are still only a
    // few milliseconds each, and the smallest scale is too short for the
    // speedup to converge (the fixed engine set-up cost dilutes the
    // dispatch-loop gain).  The CI job runs the full extended suite.
    for id in
        [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort, BenchmarkId::Queens, BenchmarkId::Fib]
    {
        let c = compare_dispatch_paths(id, Scale::Paper, 3);
        println!(
            "{:>6}: {:>8} instrs, classic {:>7.2} MIPS -> flat {:>7.2} MIPS, speedup {:.3} (floor {:.2})",
            id.name(),
            c.instructions,
            c.classic_mips,
            c.flat_mips,
            c.speedup,
            c.floor,
        );
        assert!(
            c.speedup >= c.floor,
            "{}: flat-dispatch speedup {:.3} fell below the gate {:.2} — \
             the pre-decoded fast path regressed",
            id.name(),
            c.speedup,
            c.floor,
        );
    }
}

/// The headline floors the ISSUE pins explicitly, asserted by name so a
/// floor edit cannot quietly weaken them.
#[test]
fn headline_floors_are_the_issues() {
    assert!(mlips_speedup_floor(BenchmarkId::Tak) >= 1.3);
    assert!(mlips_speedup_floor(BenchmarkId::Deriv) >= 1.3);
}
