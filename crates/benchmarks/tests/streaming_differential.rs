//! Streaming differential over the benchmark registry: driving a registry
//! program through a [`rapwam::QueryCursor`] must be observationally
//! identical to the one-shot [`Session::run_prepared`] path at the first
//! answer boundary (same bindings, counters, per-area/per-object counts,
//! trace fingerprint), and a drained-then-recycled cursor must replay the
//! same stream warm.  This pins the resumable state machine against the
//! real WAM workloads, complementing the randomized program family in
//! `crates/core/tests/resumable_differential.rs`.

use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use rapwam::session::{QueryOptions, Session};
use rapwam::{Area, MemRef, MemoryConfig, ObjectKind, Outcome};

/// FNV-1a over every field of every reference, in trace order (the same
/// fingerprint the scheduler differential suite pins).
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

fn small_opts(workers: usize) -> QueryOptions {
    // CI matrix knob: `PWAM_THREADS` overrides the default worker count.
    let workers = std::env::var("PWAM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(workers);
    QueryOptions { trace: true, memory: MemoryConfig::small(), ..QueryOptions::parallel(workers) }
}

/// Benchmarks can enumerate large solution spaces; bound the drain so the
/// suite stays fast while still crossing many suspension points.
const MAX_ANSWERS: usize = 25;

fn drain_capped(session: &Session, cursor: &mut rapwam::QueryCursor) -> Vec<Vec<(String, String)>> {
    let mut answers = Vec::new();
    while answers.len() < MAX_ANSWERS {
        match cursor.next().expect("cursor step") {
            Some(b) => {
                answers.push(b.iter().map(|(n, t)| (n.clone(), session.render(t))).collect::<Vec<_>>());
                cursor
                    .check_consistency()
                    .unwrap_or_else(|e| panic!("inconsistent stack sets at answer {}: {e}", answers.len()));
                assert_eq!(cursor.pending_goal_frames(), 0, "goal frames parked across an answer boundary");
            }
            None => break,
        }
    }
    answers
}

#[test]
fn first_answers_match_the_one_shot_path_on_the_registry() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let mut session = Session::new(&b.program).unwrap();
        let opts = small_opts(4);
        let compiled = session.prepare_with(&b.query, opts.compile_options()).unwrap();

        let one_shot = session.run_prepared(&compiled, &opts).unwrap();
        let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
        let first = cursor.next().expect("cursor step");

        match (&one_shot.outcome, &first) {
            (Outcome::Success(expected), Some(got)) => {
                let expected: Vec<(String, String)> =
                    expected.iter().map(|(n, t)| (n.clone(), session.render(t))).collect();
                let got: Vec<(String, String)> =
                    got.iter().map(|(n, t)| (n.clone(), session.render(t))).collect();
                assert_eq!(expected, got, "{}: first answers differ", id.name());
            }
            (Outcome::Failure, None) => {}
            (a, b) => panic!("{}: outcome mismatch: run={a:?} cursor={b:?}", id.name()),
        }

        let stats = cursor.stats().expect("cursor stats");
        assert_eq!(one_shot.stats.instructions, stats.instructions, "{}: instructions", id.name());
        assert_eq!(one_shot.stats.inferences, stats.inferences, "{}: inferences", id.name());
        assert_eq!(one_shot.stats.data_refs, stats.data_refs, "{}: refs", id.name());
        assert_eq!(one_shot.stats.elapsed_cycles, stats.elapsed_cycles, "{}: cycles", id.name());
        assert_eq!(one_shot.stats.parcalls, stats.parcalls, "{}: parcalls", id.name());
        for area in Area::ALL {
            assert_eq!(
                one_shot.stats.area_stats.area(area),
                stats.area_stats.area(area),
                "{}: {} counts",
                id.name(),
                area.name()
            );
        }
        for object in ObjectKind::ALL {
            assert_eq!(
                one_shot.stats.area_stats.object(object),
                stats.area_stats.object(object),
                "{}: {} counts",
                id.name(),
                object.name()
            );
        }
        let run_fp = fingerprint(one_shot.trace.as_ref().expect("run trace"));
        let cursor_fp = fingerprint(&cursor.take_trace().expect("cursor trace"));
        assert_eq!(run_fp, cursor_fp, "{}: trace fingerprints differ", id.name());
    }
}

#[test]
fn recycled_cursors_replay_the_registry_streams_warm() {
    for id in BenchmarkId::EXTENDED {
        let b = benchmark(id, Scale::Small);
        let mut session = Session::new(&b.program).unwrap();
        let opts = small_opts(2);
        let compiled = session.prepare_with(&b.query, opts.compile_options()).unwrap();

        let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
        let cold = drain_capped(&session, &mut cursor);
        let memory = cursor.close().expect("drained cursor yields its arenas");

        let mut replay = session.open_cursor(&compiled, &opts, Some(memory)).unwrap();
        let warm = drain_capped(&session, &mut replay);
        assert_eq!(cold, warm, "{}: warm replay diverged from the cold stream", id.name());
    }
}
