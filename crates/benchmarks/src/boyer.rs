//! `boyer` — a Boyer-Moore-style tautology prover (ROADMAP addition).
//!
//! A compact cousin of the Gabriel-suite `boyer` benchmark: a formula over
//! `and`/`or`/`not`/`implies` is rewritten into `if`-form, the `if`-terms
//! are normalised so that every condition is atomic (the rule
//! `if(if(A,B,C),T,E) -> if(A,if(B,T,E),if(C,T,E))` duplicates whole
//! branches, which is where the work explodes), and the result is checked
//! for tautology under true/false assumption lists.  The rewriting passes
//! recurse over independent ground subterms, which the CGEs express — like
//! `deriv`, this gives divide-and-conquer AND-parallelism over a symbolic
//! term, but with much heavier backtracking in the final proof phase.
//!
//! The input is the implication-chain theorem
//! `(v0->v1 /\ v1->v2 /\ ... /\ v(n-1)->vn) -> (v0 -> vn)`,
//! a tautology for every `n`; the host-side reference implementation checks
//! it by brute-force truth-table evaluation.

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.
pub const PROGRAM: &str = r#"
rw(and(P, Q), if(P1, Q1, f)) :- !, (ground(P), ground(Q) | rw(P, P1) & rw(Q, Q1)).
rw(or(P, Q), if(P1, t, Q1)) :- !, (ground(P), ground(Q) | rw(P, P1) & rw(Q, Q1)).
rw(not(P), if(P1, f, t)) :- !, rw(P, P1).
rw(implies(P, Q), if(P1, Q1, t)) :- !, (ground(P), ground(Q) | rw(P, P1) & rw(Q, Q1)).
rw(if(C, T, E), if(C1, T1, E1)) :- !, (ground(C), ground(T), ground(E) | rw(C, C1) & rw(T, T1) & rw(E, E1)).
rw(X, X).

norm(if(t, T, _), R) :- !, norm(T, R).
norm(if(f, _, E), R) :- !, norm(E, R).
norm(if(if(A, B, C), T, E), R) :- !, norm(if(A, if(B, T, E), if(C, T, E)), R).
norm(if(A, T, E), if(A, T1, E1)) :- !, (ground(T), ground(E) | norm(T, T1) & norm(E, E1)).
norm(X, X).

memb(X, [X|_]) :- !.
memb(X, [_|T]) :- memb(X, T).

taut(t, _, _) :- !.
taut(if(C, T, _), True, False) :- memb(C, True), !, taut(T, True, False).
taut(if(C, _, E), True, False) :- memb(C, False), !, taut(E, True, False).
taut(if(C, T, E), True, False) :- !, taut(T, [C|True], False), taut(E, True, [C|False]).
taut(X, True, _) :- memb(X, True).

chain(I, N, implies(v(I), v(J))) :- J is I + 1, J >= N, !.
chain(I, N, and(implies(v(I), v(J)), Rest)) :- J is I + 1, chain(J, N, Rest).

gen(N, implies(C, implies(v(0), v(N)))) :- chain(0, N, C).

decide(V, yes) :- taut(V, [], []), !.
decide(_, no).

boyer(N, R) :- gen(N, F), rw(F, W), norm(W, V), decide(V, R).
"#;

/// Chain length of the theorem proved at each scale.
pub fn chain_length(scale: Scale) -> u32 {
    match scale {
        Scale::Small => 4,
        Scale::Paper => 8,
        Scale::Large => 11,
    }
}

/// Host-side reference: brute-force truth-table check of the implication
/// chain theorem for `n` (variables `v0..=vn`).
pub fn is_tautology(n: u32) -> bool {
    let vars = n + 1;
    (0u32..1 << vars).all(|bits| {
        let v = |i: u32| bits >> i & 1 == 1;
        let chain = (0..n).all(|i| !v(i) || v(i + 1));
        !chain || !v(0) || v(n)
    })
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let n = chain_length(scale);
    let expected = if is_tautology(n) { "yes" } else { "no" };
    Benchmark {
        id: BenchmarkId::Boyer,
        scale,
        program: PROGRAM.to_string(),
        query: format!("boyer({n}, R)"),
        validation: Validation::EqualsAtom { variable: "R".to_string(), expected: expected.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_chain_theorem_is_a_tautology_at_every_scale() {
        for scale in [Scale::Small, Scale::Paper, Scale::Large] {
            assert!(is_tautology(chain_length(scale)));
        }
    }

    #[test]
    fn truth_table_checker_rejects_non_theorems() {
        // (v0 -> v1) -> (v1 -> v0) is not a tautology; encode it by hand:
        // assignment v0=false, v1=true falsifies it.
        let implies = |a: bool, b: bool| !a || b;
        let falsifiable = (0u32..4).all(|bits| {
            let v = |i: u32| bits >> i & 1 == 1;
            implies(implies(v(0), v(1)), implies(v(1), v(0)))
        });
        assert!(!falsifiable);
    }

    #[test]
    fn benchmark_builds_expecting_yes() {
        let b = build(Scale::Small);
        assert_eq!(b.query, "boyer(4, R)");
        match &b.validation {
            Validation::EqualsAtom { expected, .. } => assert_eq!(expected, "yes"),
            other => panic!("unexpected validation {other:?}"),
        }
    }
}
