//! `qsort` — Quicksort written with difference lists, as in the paper.
//!
//! The two recursive sorts work on the disjoint partitions `L1` and `L2`;
//! the CGE guards the parallel execution with an `indep/2` check on the two
//! partitions, mirroring the annotation used in the original RAP-WAM
//! benchmark suite.  (The open tail `R1` is shared between the branches but
//! only ever *bound* by one of them — the classic non-strict-independence
//! situation of the difference-list formulation; see DESIGN.md.)

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.
pub const PROGRAM: &str = r#"
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    ( indep(L1, L2) |
      qsort(L1, R, [X|R1]) & qsort(L2, R1, R0) ).

partition([], _, [], []).
partition([E|R], C, [E|L1], L2) :-
    E =< C, !,
    partition(R, C, L1, L2).
partition([E|R], C, L1, [E|L2]) :-
    partition(R, C, L1, L2).
"#;

/// Input parameters.
#[derive(Debug, Clone, Copy)]
pub struct QsortParams {
    /// Number of elements to sort.
    pub length: usize,
    /// Seed of the deterministic pseudo-random permutation.
    pub seed: u64,
}

impl QsortParams {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => QsortParams { length: 30, seed: 11 },
            Scale::Paper => QsortParams { length: 300, seed: 11 },
            Scale::Large => QsortParams { length: 1000, seed: 11 },
        }
    }
}

/// The input list (deterministic linear-congruential permutation).
pub fn input_list(params: QsortParams) -> Vec<i64> {
    let mut state = params.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..params.length)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 10_000) as i64
        })
        .collect()
}

fn list_text(items: &[i64]) -> String {
    let inner: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", inner.join(","))
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let p = QsortParams::for_scale(scale);
    let input = input_list(p);
    let mut sorted = input.clone();
    sorted.sort_unstable();
    Benchmark {
        id: BenchmarkId::Qsort,
        scale,
        program: PROGRAM.to_string(),
        query: format!("qsort({}, S, [])", list_text(&input)),
        validation: Validation::EqualsList { variable: "S".to_string(), expected: sorted },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_is_deterministic() {
        let a = input_list(QsortParams { length: 10, seed: 3 });
        let b = input_list(QsortParams { length: 10, seed: 3 });
        assert_eq!(a, b);
        let c = input_list(QsortParams { length: 10, seed: 4 });
        assert_ne!(a, c);
    }

    #[test]
    fn benchmark_builds_with_sorted_expectation() {
        let b = build(Scale::Small);
        match &b.validation {
            Validation::EqualsList { expected, .. } => {
                assert!(expected.windows(2).all(|w| w[0] <= w[1]));
                assert_eq!(expected.len(), 30);
            }
            other => panic!("unexpected validation {other:?}"),
        }
    }
}
