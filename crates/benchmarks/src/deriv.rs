//! `deriv` — symbolic differentiation.
//!
//! The classic Prolog symbolic-differentiation benchmark, annotated with
//! unconditional CGEs: the sub-derivatives of `U+V`, `U*V`, ... are
//! independent (the input expression is ground and the output variables are
//! distinct), so compile-time analysis removes the run-time checks — exactly
//! the situation the paper describes as typical after global analysis.
//!
//! The granularity is small (each node of the expression tree is one
//! parallel call), which the paper uses as a worst-case for the
//! parallelism-management overhead (Figure 2).

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated differentiation program.
pub const PROGRAM: &str = r#"
% d(Expression, Variable, Derivative)
% The cuts mirror the classic benchmark: the clauses are mutually exclusive,
% so each cut discards the selection choice point as soon as the head has
% committed (first-argument indexing already avoids most of them).
d(U+V, X, DU+DV) :- !,
    ( d(U, X, DU) & d(V, X, DV) ).
d(U-V, X, DU-DV) :- !,
    ( d(U, X, DU) & d(V, X, DV) ).
d(U*V, X, DU*V + U*DV) :- !,
    ( d(U, X, DU) & d(V, X, DV) ).
d(U/V, X, (DU*V - U*DV) / (V*V)) :- !,
    ( d(U, X, DU) & d(V, X, DV) ).
d(-U, X, -DU) :- !,
    d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !,
    d(U, X, DU).
d(log(U), X, DU/U) :- !,
    d(U, X, DU).
d(X, X, 1) :- !.
d(C, _, 0) :- atomic(C).
"#;

/// Parameters of the generated input expression.
#[derive(Debug, Clone, Copy)]
pub struct DerivParams {
    /// Depth of the balanced expression tree that is generated.
    pub depth: u32,
}

impl DerivParams {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => DerivParams { depth: 4 },
            Scale::Paper => DerivParams { depth: 9 },
            Scale::Large => DerivParams { depth: 10 },
        }
    }
}

/// Generate a ground arithmetic expression in `x` as Prolog text.
///
/// The generator is deterministic: it cycles through the operator set so the
/// expression exercises every clause of `d/3` (including the sequential
/// `exp`/`log`/negation cases) while staying perfectly reproducible.
pub fn expression(params: DerivParams) -> String {
    build_expr(params.depth, 0)
}

fn build_expr(depth: u32, salt: u32) -> String {
    if depth == 0 {
        // Leaves alternate between the differentiation variable and constants.
        return match salt % 3 {
            0 => "x".to_string(),
            1 => ((salt % 7) + 1).to_string(),
            _ => "a".to_string(),
        };
    }
    let left = build_expr(depth - 1, salt * 2 + 1);
    let right = build_expr(depth - 1, salt * 2 + 2);
    match salt % 6 {
        0 => format!("({left} + {right})"),
        1 => format!("({left} * {right})"),
        2 => format!("({left} - {right})"),
        3 => format!("({left} / {right})"),
        4 => format!("exp({left})"),
        _ => format!("log(({left} + {right}))"),
    }
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let params = DerivParams::for_scale(scale);
    let expr = expression(params);
    Benchmark {
        id: BenchmarkId::Deriv,
        scale,
        program: PROGRAM.to_string(),
        query: format!("d({expr}, x, D)"),
        validation: Validation::MatchesSequential { variable: "D".to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_is_deterministic_and_grows_with_depth() {
        let a = expression(DerivParams { depth: 3 });
        let b = expression(DerivParams { depth: 3 });
        assert_eq!(a, b);
        let big = expression(DerivParams { depth: 6 });
        assert!(big.len() > a.len());
        assert!(big.contains('x'));
    }

    #[test]
    fn benchmark_builds() {
        let b = build(Scale::Small);
        assert!(b.query.starts_with("d("));
        assert!(b.program.contains("d(U+V"));
    }
}
