//! # pwam-benchmarks — the ICPP'88 benchmark suite
//!
//! The four programs the paper measures (Section 3.2):
//!
//! * **deriv** — symbolic differentiation of an arithmetic expression,
//! * **tak** — Takeuchi's function,
//! * **qsort** — Quicksort written with difference lists,
//! * **matrix** — naive matrix multiplication.
//!
//! Each benchmark provides its annotated (CGE) Prolog source, a scalable
//! input generator, the query text, and a host-side validation of the
//! answer.  The inputs default to sizes that produce reference counts of the
//! same order of magnitude as the paper's Table 2 (tens of thousands to a
//! few hundred thousand references); `Scale::Small` gives quick inputs for
//! unit tests.
//!
//! Beyond the paper's four programs the registry also carries `boyer`, a
//! Boyer-Moore-style tautology prover, `queens`, a generate-and-test
//! N-queens whose candidate tests are CGEs, and `fib`, the
//! finest-granularity worst case for parallelism overhead (ROADMAP
//! additions): [`BenchmarkId::ALL`] stays the paper's suite so every
//! table/figure reproduction is unchanged, while [`BenchmarkId::EXTENDED`]
//! / [`extended_benchmarks`] include the extras.
//!
//! The [`overhead`] module measures the RAP-WAM-on-1-PE-vs-sequential-WAM
//! instruction overhead per registry program; a regression gate pins the
//! paper's headline numbers (deriv ≤ 1.30).

pub mod boyer;
pub mod deriv;
pub mod fib;
pub mod matrix;
pub mod mlips;
pub mod overhead;
pub mod qsort;
pub mod queens;
pub mod runner;
pub mod tak;

pub use runner::{run_benchmark, run_benchmark_with_session, validate, RunSummary, Validation};

use serde::{Deserialize, Serialize};

/// A benchmark of the registry: the paper's four plus later additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    Deriv,
    Tak,
    Qsort,
    Matrix,
    Boyer,
    Queens,
    Fib,
}

impl BenchmarkId {
    /// The paper's four benchmarks, in the paper's order (the suite every
    /// table and figure reproduction runs on).
    pub const ALL: [BenchmarkId; 4] =
        [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort, BenchmarkId::Matrix];

    /// The paper's suite plus the registry additions.
    pub const EXTENDED: [BenchmarkId; 7] = [
        BenchmarkId::Deriv,
        BenchmarkId::Tak,
        BenchmarkId::Qsort,
        BenchmarkId::Matrix,
        BenchmarkId::Boyer,
        BenchmarkId::Queens,
        BenchmarkId::Fib,
    ];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Deriv => "deriv",
            BenchmarkId::Tak => "tak",
            BenchmarkId::Qsort => "qsort",
            BenchmarkId::Matrix => "matrix",
            BenchmarkId::Boyer => "boyer",
            BenchmarkId::Queens => "queens",
            BenchmarkId::Fib => "fib",
        }
    }

    /// Look a benchmark up by its registry name.
    pub fn parse(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::EXTENDED.iter().copied().find(|id| id.name() == name)
    }
}

/// Input scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second in debug builds).
    Small,
    /// Inputs comparable to the paper's "relatively large input data".
    Paper,
    /// Larger inputs for stress runs and host-parallelism benchmarks.
    Large,
}

/// A concrete benchmark instance: program, query and validation.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub id: BenchmarkId,
    pub scale: Scale,
    /// Annotated (CGE) program source.
    pub program: String,
    /// Query text, e.g. `"d(<expr>, x, D)"`.
    pub query: String,
    /// How to check the answer.
    pub validation: Validation,
}

/// Build a benchmark instance.
pub fn benchmark(id: BenchmarkId, scale: Scale) -> Benchmark {
    match id {
        BenchmarkId::Deriv => deriv::build(scale),
        BenchmarkId::Tak => tak::build(scale),
        BenchmarkId::Qsort => qsort::build(scale),
        BenchmarkId::Matrix => matrix::build(scale),
        BenchmarkId::Boyer => boyer::build(scale),
        BenchmarkId::Queens => queens::build(scale),
        BenchmarkId::Fib => fib::build(scale),
    }
}

/// The paper's four benchmarks at one scale.
pub fn all_benchmarks(scale: Scale) -> Vec<Benchmark> {
    BenchmarkId::ALL.iter().map(|&id| benchmark(id, scale)).collect()
}

/// The extended registry (paper suite plus additions) at one scale.
pub fn extended_benchmarks(scale: Scale) -> Vec<Benchmark> {
    BenchmarkId::EXTENDED.iter().map(|&id| benchmark(id, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        let names: Vec<_> = BenchmarkId::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["deriv", "tak", "qsort", "matrix"]);
    }

    #[test]
    fn extended_registry_adds_boyer_queens_and_fib() {
        let names: Vec<_> = BenchmarkId::EXTENDED.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["deriv", "tak", "qsort", "matrix", "boyer", "queens", "fib"]);
    }

    #[test]
    fn ids_parse_by_name() {
        assert_eq!(BenchmarkId::parse("queens"), Some(BenchmarkId::Queens));
        assert_eq!(BenchmarkId::parse("tak"), Some(BenchmarkId::Tak));
        assert_eq!(BenchmarkId::parse("nope"), None);
    }

    #[test]
    fn all_benchmarks_build_at_every_scale() {
        for scale in [Scale::Small, Scale::Paper, Scale::Large] {
            let benches = all_benchmarks(scale);
            assert_eq!(benches.len(), 4);
            for b in benches {
                assert!(!b.program.is_empty());
                assert!(!b.query.is_empty());
            }
            assert_eq!(extended_benchmarks(scale).len(), 7);
        }
    }
}
