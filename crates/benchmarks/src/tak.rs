//! `tak` — Takeuchi's function.
//!
//! The three recursive calls of each step are independent once their
//! (ground) integer arguments are computed, which the CGE expresses with
//! `ground/1` run-time checks — this benchmark therefore also exercises the
//! `check_ground` instructions of the RAP-WAM.

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.
pub const PROGRAM: &str = r#"
tak(X, Y, Z, A) :-
    X =< Y, !,
    A = Z.
tak(X, Y, Z, A) :-
    X1 is X - 1,
    Y1 is Y - 1,
    Z1 is Z - 1,
    ( ground(X1), ground(Y1), ground(Z1) |
      tak(X1, Y, Z, A1) & tak(Y1, Z, X, A2) & tak(Z1, X, Y, A3) ),
    tak(A1, A2, A3, A).
"#;

/// Input arguments of the Takeuchi function.
#[derive(Debug, Clone, Copy)]
pub struct TakParams {
    pub x: i64,
    pub y: i64,
    pub z: i64,
}

impl TakParams {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => TakParams { x: 10, y: 6, z: 3 },
            Scale::Paper => TakParams { x: 12, y: 8, z: 4 },
            Scale::Large => TakParams { x: 18, y: 12, z: 6 },
        }
    }
}

/// Host-side reference implementation used for validation.
pub fn tak(x: i64, y: i64, z: i64) -> i64 {
    if x <= y {
        z
    } else {
        tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
    }
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let p = TakParams::for_scale(scale);
    Benchmark {
        id: BenchmarkId::Tak,
        scale,
        program: PROGRAM.to_string(),
        query: format!("tak({}, {}, {}, A)", p.x, p.y, p.z),
        validation: Validation::EqualsInt { variable: "A".to_string(), expected: tak(p.x, p.y, p.z) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tak_values() {
        assert_eq!(tak(18, 12, 6), 7);
        assert_eq!(tak(10, 6, 3), 4);
        assert_eq!(tak(1, 1, 1), 1);
    }

    #[test]
    fn benchmark_builds_with_expected_value() {
        let b = build(Scale::Small);
        match &b.validation {
            Validation::EqualsInt { expected, .. } => assert_eq!(*expected, 4),
            other => panic!("unexpected validation {other:?}"),
        }
    }
}
