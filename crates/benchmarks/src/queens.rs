//! `queens` — N-queens by generate-and-test (registry addition).
//!
//! A mid-weight *nondeterministic* workload for the serving layer's load
//! harness: `perm/2` enumerates board permutations through deep
//! backtracking, and the safety test of each candidate is a CGE — checking
//! one queen against the queens behind it is independent of checking the
//! rest, so a failed candidate backtracks *across completed Parcall Frames*
//! back into the generator.  None of the paper's four programs (nor `boyer`)
//! combines heavy sequential backtracking with AND-parallel testing this
//! way, which is exactly the stress the engine's Marker/Parcall recovery
//! machinery needs.
//!
//! The first solution is deterministic (lexicographically smallest safe
//! permutation, by clause order), so the host-side reference replays the
//! same search order and the benchmark validates the exact board.

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.
pub const PROGRAM: &str = r#"
queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).

range(N, N, [N]) :- !.
range(I, N, [I|T]) :- I < N, J is I + 1, range(J, N, T).

sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).

perm([], []).
perm(L, [X|T]) :- sel(X, L, R), perm(R, T).

safe([]).
safe([Q|Qs]) :- (ground(Q), ground(Qs) | no_attack(Q, Qs, 1) & safe(Qs)).

no_attack(_, [], _).
no_attack(Q, [P|Ps], D) :- Q =\= P + D, P =\= Q + D, D1 is D + 1, no_attack(Q, Ps, D1).
"#;

/// Board size at each scale.
pub fn board_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 5,
        Scale::Paper => 7,
        Scale::Large => 8,
    }
}

/// Host-side reference: the first safe permutation in the exact order the
/// Prolog program enumerates them (lexicographic over `[1..=n]`, because
/// `sel/3` takes list elements front to back).
pub fn first_solution(n: usize) -> Option<Vec<i64>> {
    fn search(remaining: &[i64], placed: &mut Vec<i64>, out: &mut Option<Vec<i64>>) {
        if out.is_some() {
            return;
        }
        if remaining.is_empty() {
            if is_safe(placed) {
                *out = Some(placed.clone());
            }
            return;
        }
        for i in 0..remaining.len() {
            let mut rest = remaining.to_vec();
            let q = rest.remove(i);
            placed.push(q);
            search(&rest, placed, out);
            placed.pop();
            if out.is_some() {
                return;
            }
        }
    }
    let board: Vec<i64> = (1..=n as i64).collect();
    let mut out = None;
    search(&board, &mut Vec::new(), &mut out);
    out
}

/// True when no two queens of the (column-ordered) board attack each other.
pub fn is_safe(board: &[i64]) -> bool {
    board.iter().enumerate().all(|(i, &q)| {
        board[i + 1..]
            .iter()
            .enumerate()
            .all(|(d, &p)| q != p && q != p + (d as i64 + 1) && p != q + (d as i64 + 1))
    })
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let n = board_size(scale);
    let expected = first_solution(n).expect("n-queens has a solution at every registry scale");
    Benchmark {
        id: BenchmarkId::Queens,
        scale,
        program: PROGRAM.to_string(),
        query: format!("queens({n}, Qs)"),
        validation: Validation::EqualsList { variable: "Qs".to_string(), expected },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_check_matches_known_boards() {
        assert!(is_safe(&[1, 3, 5, 2, 4]));
        assert!(is_safe(&[2, 4, 6, 1, 3, 5]));
        assert!(!is_safe(&[1, 2, 3, 4, 5]), "a diagonal of queens all attack");
        assert!(!is_safe(&[1, 1]), "same row attacks");
    }

    #[test]
    fn first_solutions_are_the_lexicographic_ones() {
        assert_eq!(first_solution(4), Some(vec![2, 4, 1, 3]));
        assert_eq!(first_solution(5), Some(vec![1, 3, 5, 2, 4]));
        assert_eq!(first_solution(6), Some(vec![2, 4, 6, 1, 3, 5]));
        assert_eq!(first_solution(8), Some(vec![1, 5, 8, 6, 3, 7, 2, 4]));
        assert_eq!(first_solution(3), None, "3-queens has no solution");
    }

    #[test]
    fn benchmark_builds_at_every_scale() {
        for scale in [Scale::Small, Scale::Paper, Scale::Large] {
            let b = build(scale);
            assert!(b.query.starts_with("queens("));
            match &b.validation {
                Validation::EqualsList { expected, .. } => {
                    assert_eq!(expected.len(), board_size(scale));
                    assert!(is_safe(expected));
                }
                other => panic!("unexpected validation {other:?}"),
            }
        }
    }
}
