//! RAP-WAM-vs-sequential overhead measurement — the regression harness
//! behind the paper's headline claim.
//!
//! The paper reports that running the parallel RAP-WAM on *one* PE costs
//! only a small constant factor over the sequential WAM (~15% for `deriv`),
//! because the parallelism machinery the parent actually touches for goals
//! nobody steals is tiny: with the last-goal-inline optimisation the
//! leftmost CGE branch runs with no Goal Frame at all, and only the
//! scheduled siblings pay for frame pushes and the completion protocol.
//!
//! [`measure`] runs one registry benchmark twice on a single interleaved PE
//! — compiled sequentially (plain WAM) and compiled in parallel (RAP-WAM) —
//! and reports the instruction and data-reference ratios.  The
//! `overhead_gate` integration test pins [`instruction_overhead_bound`] per
//! registry program (deriv ≤ 1.30, fib ≤ 1.8, …) so a regression in the
//! inline path or the parcall protocol fails CI instead of silently
//! re-inflating the overhead.

use crate::runner::{run_benchmark_with_session, validate};
use crate::{benchmark, BenchmarkId, Scale};
use rapwam::session::QueryOptions;

/// Overhead of one benchmark: parallel-on-1-PE work relative to sequential.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    pub id: BenchmarkId,
    pub scale: Scale,
    /// Whether the parallel run used the last-goal-inline optimisation.
    pub inline_first_goal: bool,
    /// Abstract-machine instructions executed by the sequential WAM run.
    pub seq_instructions: u64,
    /// Instructions executed by the RAP-WAM run on one PE.
    pub par_instructions: u64,
    /// Data references of the sequential WAM run.
    pub seq_refs: u64,
    /// Data references of the RAP-WAM run on one PE.
    pub par_refs: u64,
}

impl OverheadReport {
    /// `par_instructions / seq_instructions` — the gated quantity.
    pub fn instruction_ratio(&self) -> f64 {
        self.par_instructions as f64 / self.seq_instructions as f64
    }

    /// `par_refs / seq_refs` (the paper's Figure 2 measures references).
    pub fn ref_ratio(&self) -> f64 {
        self.par_refs as f64 / self.seq_refs as f64
    }
}

/// Run `id` at `scale` sequentially and in parallel on one interleaved PE
/// (validating both answers) and report the overhead.
pub fn measure(id: BenchmarkId, scale: Scale, inline_first_goal: bool) -> OverheadReport {
    let bench = benchmark(id, scale);
    let seq = {
        let (session, result) = run_benchmark_with_session(&bench, &QueryOptions::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", id.name()));
        validate(&bench, &session, &result).unwrap_or_else(|e| panic!("{e}"));
        result
    };
    let mut par_opts = QueryOptions::parallel(1);
    par_opts.inline_first_goal = inline_first_goal;
    let par = {
        let (session, result) = run_benchmark_with_session(&bench, &par_opts)
            .unwrap_or_else(|e| panic!("{}: parallel run failed: {e}", id.name()));
        validate(&bench, &session, &result).unwrap_or_else(|e| panic!("{e}"));
        result
    };
    OverheadReport {
        id,
        scale,
        inline_first_goal,
        seq_instructions: seq.stats.instructions,
        par_instructions: par.stats.instructions,
        seq_refs: seq.stats.data_refs,
        par_refs: par.stats.data_refs,
    }
}

/// The gated 1-PE instruction-overhead bound per registry program (parallel
/// instructions ≤ bound × sequential instructions, with the
/// last-goal-inline optimisation on).
///
/// The deriv and fib bounds are the headline contract (the paper's ~15%
/// for deriv plus headroom for this engine's protocol reads; fib annotates
/// every recursion level, the finest granularity possible).  The remaining
/// bounds were measured after the optimisation landed and carry ~10%
/// headroom — they exist so a protocol regression anywhere in the registry
/// trips the gate, not to certify a paper number.
pub fn instruction_overhead_bound(id: BenchmarkId) -> f64 {
    match id {
        // Headline bounds (measured 1.09 and 1.19 at Scale::Small).
        BenchmarkId::Deriv => 1.30,
        BenchmarkId::Fib => 1.80,
        // Measured + headroom.
        BenchmarkId::Tak => 1.25,
        BenchmarkId::Qsort => 1.15,
        BenchmarkId::Matrix => 1.10,
        BenchmarkId::Boyer => 1.20,
        // Generate-and-test: parcall cancellation retracts the doomed
        // sibling checks a failed candidate would otherwise run, so even
        // the backtracking-heavy workload stays close to the WAM.
        BenchmarkId::Queens => 1.15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios_divide() {
        let r = OverheadReport {
            id: BenchmarkId::Deriv,
            scale: Scale::Small,
            inline_first_goal: true,
            seq_instructions: 1000,
            par_instructions: 1150,
            seq_refs: 2000,
            par_refs: 2600,
        };
        assert!((r.instruction_ratio() - 1.15).abs() < 1e-12);
        assert!((r.ref_ratio() - 1.30).abs() < 1e-12);
    }

    #[test]
    fn every_registry_program_has_a_bound() {
        for id in BenchmarkId::EXTENDED {
            let bound = instruction_overhead_bound(id);
            assert!(bound > 1.0 && bound <= 2.0, "{}: implausible bound {bound}", id.name());
        }
    }
}
