//! `matrix` — naive matrix multiplication.
//!
//! Rows of the result are computed in parallel (one CGE branch per row via
//! the recursion over rows), which is the coarse-granularity member of the
//! benchmark set: the paper notes that `matrix` has much larger grain size
//! than the other three programs.

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.  The second matrix is supplied already transposed
/// (its columns as rows), as is conventional for this benchmark.
pub const PROGRAM: &str = r#"
mmultiply([], _, []).
mmultiply([Row|Rows], Cols, [Result|Results]) :-
    ( ground(Row), ground(Cols) |
      multiply_row(Cols, Row, Result) & mmultiply(Rows, Cols, Results) ).

multiply_row([], _, []).
multiply_row([Col|Cols], Row, [R|Rs]) :-
    vmul(Row, Col, 0, R),
    multiply_row(Cols, Row, Rs).

vmul([], [], Acc, Acc).
vmul([A|As], [B|Bs], Acc, R) :-
    Acc1 is Acc + A * B,
    vmul(As, Bs, Acc1, R).
"#;

/// Input parameters.
#[derive(Debug, Clone, Copy)]
pub struct MatrixParams {
    /// Matrices are `n × n`.
    pub n: usize,
    /// Seed for the deterministic element generator.
    pub seed: u64,
}

impl MatrixParams {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => MatrixParams { n: 4, seed: 5 },
            Scale::Paper => MatrixParams { n: 10, seed: 5 },
            Scale::Large => MatrixParams { n: 16, seed: 5 },
        }
    }
}

/// Generate an `n × n` matrix of small integers.
pub fn generate(params: MatrixParams, which: u64) -> Vec<Vec<i64>> {
    let mut state = params.seed.wrapping_add(which).wrapping_mul(0x9E3779B97F4A7C15);
    (0..params.n)
        .map(|_| {
            (0..params.n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 40) % 10) as i64
                })
                .collect()
        })
        .collect()
}

/// Transpose a matrix.
pub fn transpose(m: &[Vec<i64>]) -> Vec<Vec<i64>> {
    if m.is_empty() {
        return Vec::new();
    }
    (0..m[0].len()).map(|j| m.iter().map(|row| row[j]).collect()).collect()
}

/// Host-side reference product for validation.
pub fn multiply(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let n = a.len();
    let m = b[0].len();
    let k = b.len();
    (0..n).map(|i| (0..m).map(|j| (0..k).map(|x| a[i][x] * b[x][j]).sum()).collect()).collect()
}

/// Render a matrix as a Prolog list of lists.
pub fn matrix_text(m: &[Vec<i64>]) -> String {
    let rows: Vec<String> = m
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let p = MatrixParams::for_scale(scale);
    let a = generate(p, 1);
    let b = generate(p, 2);
    let expected = multiply(&a, &b);
    let b_t = transpose(&b);
    Benchmark {
        id: BenchmarkId::Matrix,
        scale,
        program: PROGRAM.to_string(),
        query: format!("mmultiply({}, {}, C)", matrix_text(&a), matrix_text(&b_t)),
        validation: Validation::EqualsMatrix { variable: "C".to_string(), expected },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_multiply() {
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![5, 6], vec![7, 8]];
        assert_eq!(multiply(&a, &b), vec![vec![19, 22], vec![43, 50]]);
    }

    #[test]
    fn transpose_round_trips() {
        let p = MatrixParams { n: 3, seed: 9 };
        let m = generate(p, 1);
        assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn matrix_text_is_prolog_syntax() {
        assert_eq!(matrix_text(&[vec![1, 2], vec![3, 4]]), "[[1,2],[3,4]]");
    }

    #[test]
    fn benchmark_builds() {
        let b = build(Scale::Small);
        assert!(b.query.starts_with("mmultiply([["));
    }
}
