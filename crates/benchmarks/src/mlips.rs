//! MLIPS throughput harness: raw abstract-machine instructions per second.
//!
//! The overhead gate ([`crate::overhead`]) pins *instruction counts* — how
//! much work the RAP-WAM does relative to the sequential WAM.  This module
//! measures the orthogonal quantity: how fast the host executor retires
//! those instructions.  [`measure_mlips`] runs one registry benchmark on
//! the configured strict backend ([`mlips_configuration`]; default one
//! interleaved PE, CI also gates Threaded×Strict at 2 PEs), times the
//! engine run (compilation and engine construction excluded), and reports
//! millions of instructions per second over the best of `runs` attempts.
//!
//! Because wall-clock throughput is machine-dependent, the regression gate
//! (`mlips_gate` integration test) does not pin absolute numbers.  Instead
//! it measures the flattened executor *and* the classic pre-flattening
//! dispatch path ([`rapwam::session::QueryOptions::classic_dispatch`]) on
//! the same machine in the same process, and gates the ratio: the dense
//! pre-decoded fast path must stay at least [`mlips_speedup_floor`] times
//! faster than the baseline per benchmark.  The measured values are
//! recorded in `BENCH_mlips.json` at the repository root so the raw-speed
//! trajectory is visible across PRs.

use crate::{benchmark, BenchmarkId, Scale};
use rapwam::session::{QueryOptions, Session};
use rapwam::{Engine, Outcome, SchedulerKind};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The scheduler×width configuration the MLIPS harness runs under,
/// resolved from the environment so CI can gate more than one backend:
///
/// * `PWAM_MLIPS_SCHED` — `interleaved` (default) or `threaded`.  Both are
///   strict (deterministic), so flat and classic retire the *same*
///   instruction stream and the speedup ratio stays meaningful.
/// * `PWAM_MLIPS_THREADS` — worker count, default 1.
///
/// CI runs the default 1-PE interleaved leg and a `threaded`×2-PE leg: the
/// latter exercises the flat loop's driver-free goal transitions and
/// park/steal cold exits under the token ring, where quantum boundaries
/// and cross-PE handoffs actually occur.
pub fn mlips_configuration() -> (SchedulerKind, usize) {
    let scheduler = match std::env::var("PWAM_MLIPS_SCHED").as_deref() {
        Ok("threaded") => SchedulerKind::Threaded,
        _ => SchedulerKind::Interleaved,
    };
    let workers = std::env::var("PWAM_MLIPS_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    (scheduler, workers.max(1))
}

fn scheduler_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::Interleaved => "interleaved",
        SchedulerKind::Threaded => "threaded",
    }
}

/// Throughput of one benchmark on the configured strict backend.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlipsReport {
    pub id: BenchmarkId,
    pub scale: Scale,
    /// Whether the run used the classic (pre-flattening) dispatch path.
    pub classic_dispatch: bool,
    /// Abstract-machine instructions executed by one run.
    pub instructions: u64,
    /// Best wall-clock engine time over all attempts, in seconds.
    pub best_secs: f64,
    /// Number of timed attempts.
    pub runs: usize,
}

impl MlipsReport {
    /// Millions of abstract-machine instructions retired per second.
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.best_secs / 1e6
    }
}

/// Time `id` at `scale` on the configured strict backend (see
/// [`mlips_configuration`]; default one interleaved PE) and report the
/// best-of-`runs` throughput.  Only the engine run is timed: compilation is cached
/// by the session and engine construction (arena allocation) happens before
/// the clock starts.
pub fn measure_mlips(id: BenchmarkId, scale: Scale, runs: usize, classic_dispatch: bool) -> MlipsReport {
    let bench = benchmark(id, scale);
    let mut session =
        Session::new(&bench.program).unwrap_or_else(|e| panic!("{}: parse failed: {e}", id.name()));
    let (scheduler, workers) = mlips_configuration();
    let options =
        QueryOptions { classic_dispatch, ..QueryOptions::parallel(workers).with_scheduler(scheduler) };
    let compiled = session
        .prepare_with(&bench.query, options.compile_options())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", id.name()));
    let mut config = options.engine_config();
    // On a single PE the quantum changes nothing semantically (there is no
    // other worker to interleave with) but it decides how often the driver
    // re-enters `exec_batch`.  The default of 1 would measure the
    // per-entry overhead of the driver, not the dispatch loop; a large
    // quantum lets both paths run their batch loop properly (and is what
    // any throughput-minded embedding would configure).  Applied to the
    // classic path too, so the comparison stays entry-for-entry fair.
    config.quantum = 4096;

    let runs = runs.max(1);
    let mut best_secs = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..runs {
        let engine = Engine::new(&compiled, config.clone());
        let start = Instant::now();
        let result =
            engine.run(session.symbols()).unwrap_or_else(|e| panic!("{}: run failed: {e}", id.name()));
        let secs = start.elapsed().as_secs_f64();
        assert!(matches!(result.outcome, Outcome::Success(_)), "{}: benchmark query failed", id.name());
        instructions = result.stats.instructions;
        best_secs = best_secs.min(secs.max(1e-9));
    }
    MlipsReport { id, scale, classic_dispatch, instructions, best_secs, runs }
}

/// One benchmark's entry in `BENCH_mlips.json`: the flattened fast path
/// against the classic dispatch baseline, measured back to back on the same
/// machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlipsComparison {
    pub id: BenchmarkId,
    pub scale: Scale,
    pub instructions: u64,
    /// MIPS through the classic (pre-flattening) dispatch path.
    pub classic_mips: f64,
    /// MIPS through the flattened (dense pre-decoded) fast path.
    pub flat_mips: f64,
    /// `flat_mips / classic_mips` — the gated quantity.
    pub speedup: f64,
    /// The per-benchmark floor the gate enforces on `speedup`.
    pub floor: f64,
    /// Scheduler backend the comparison ran on (`interleaved`/`threaded`).
    pub scheduler: String,
    /// Worker count of the run.
    pub workers: usize,
}

/// One recorded `mlips_throughput` invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlipsRun {
    /// Seconds since the Unix epoch when the run was recorded (0 for
    /// entries migrated from the original flat-array file format).
    pub unix_secs: u64,
    pub reports: Vec<MlipsComparison>,
}

/// On-disk shape of `BENCH_mlips.json`: the most recent full-registry run
/// plus every previously recorded run, so the raw-speed trajectory
/// accumulates across PRs instead of each run overwriting the last.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MlipsFile {
    pub latest: Vec<MlipsComparison>,
    pub history: Vec<MlipsRun>,
}

fn comparison_from_value(v: &serde_json::Value) -> Option<MlipsComparison> {
    let id = BenchmarkId::parse(&v.get("id")?.as_str()?.to_lowercase())?;
    let scale = match v.get("scale")?.as_str()? {
        "Paper" => Scale::Paper,
        "Small" => Scale::Small,
        _ => return None,
    };
    Some(MlipsComparison {
        id,
        scale,
        instructions: v.get("instructions")?.as_u64()?,
        classic_mips: v.get("classic_mips")?.as_f64()?,
        flat_mips: v.get("flat_mips")?.as_f64()?,
        speedup: v.get("speedup")?.as_f64()?,
        floor: v.get("floor")?.as_f64()?,
        // Absent in files written before the scheduler was configurable:
        // every such run was one interleaved PE.
        scheduler: v.get("scheduler").and_then(|s| s.as_str()).unwrap_or("interleaved").to_string(),
        workers: v.get("workers").and_then(|w| w.as_u64()).unwrap_or(1) as usize,
    })
}

fn comparisons_from_value(v: &serde_json::Value) -> Option<Vec<MlipsComparison>> {
    v.as_array()?.iter().map(comparison_from_value).collect()
}

impl MlipsFile {
    /// Parse an existing `BENCH_mlips.json`, accepting both the current
    /// `{latest, history}` shape and the original flat-array format.  A
    /// flat array migrates to a file whose single (timestampless) history
    /// entry is the array.  Unparseable or absent content starts fresh.
    pub fn parse_or_default(json: &str) -> MlipsFile {
        let Ok(v) = serde_json::from_str(json) else { return MlipsFile::default() };
        if let Some(reports) = comparisons_from_value(&v) {
            return MlipsFile { latest: reports.clone(), history: vec![MlipsRun { unix_secs: 0, reports }] };
        }
        let parsed = || -> Option<MlipsFile> {
            let latest = comparisons_from_value(v.get("latest")?)?;
            let history = v
                .get("history")?
                .as_array()?
                .iter()
                .map(|run| {
                    Some(MlipsRun {
                        unix_secs: run.get("unix_secs")?.as_u64()?,
                        reports: comparisons_from_value(run.get("reports")?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Some(MlipsFile { latest, history })
        }();
        parsed.unwrap_or_default()
    }

    /// Record a new run: it becomes `latest` and is appended to `history`.
    pub fn record(&mut self, unix_secs: u64, reports: Vec<MlipsComparison>) {
        self.latest = reports.clone();
        self.history.push(MlipsRun { unix_secs, reports });
    }
}

/// Measure one benchmark through both dispatch paths and report the gated
/// comparison.  The paths are interleaved run by run (classic, flat,
/// classic, flat, …) so a load spike on the host penalises both equally.
pub fn compare_dispatch_paths(id: BenchmarkId, scale: Scale, runs: usize) -> MlipsComparison {
    let classic = measure_mlips(id, scale, runs, true);
    let flat = measure_mlips(id, scale, runs, false);
    // One more alternating round, keeping each path's best: guards the
    // ratio against one-sided interference from the host.
    let classic2 = measure_mlips(id, scale, runs, true);
    let flat2 = measure_mlips(id, scale, runs, false);
    let classic_mips = classic.mips().max(classic2.mips());
    let flat_mips = flat.mips().max(flat2.mips());
    let (scheduler, workers) = mlips_configuration();
    MlipsComparison {
        id,
        scale,
        instructions: flat.instructions,
        classic_mips,
        flat_mips,
        speedup: flat_mips / classic_mips,
        floor: mlips_speedup_floor(id),
        scheduler: scheduler_name(scheduler).to_string(),
        workers,
    }
}

/// The gated flattened-over-classic throughput floor per registry program.
///
/// tak and deriv carry the original headline requirement (≥ 1.3× over the
/// pre-flattening baseline); every floor was raised once the flat loop
/// became self-sufficient across goal boundaries (driver-free goal
/// transitions, the wider register caches, batched accounting): local
/// measurements sit at 2.4–3.2× on one interleaved PE and 2.2–2.5× on the
/// strict token ring at 2 PEs, so the floors below keep generous headroom
/// for shared-CI noise while still catching any regression that
/// re-introduces per-access locking, bounds-checked fetch, or per-goal
/// driver round trips.
pub fn mlips_speedup_floor(id: BenchmarkId) -> f64 {
    match id {
        BenchmarkId::Tak | BenchmarkId::Deriv => 1.5,
        BenchmarkId::Fib | BenchmarkId::Queens => 1.4,
        _ => 1.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_divides() {
        let r = MlipsReport {
            id: BenchmarkId::Tak,
            scale: Scale::Small,
            classic_dispatch: false,
            instructions: 2_000_000,
            best_secs: 0.5,
            runs: 3,
        };
        assert!((r.mips() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn headline_floors_are_the_issues() {
        assert!(mlips_speedup_floor(BenchmarkId::Tak) >= 1.3);
        assert!(mlips_speedup_floor(BenchmarkId::Deriv) >= 1.3);
        for id in BenchmarkId::EXTENDED {
            assert!(mlips_speedup_floor(id) > 0.0);
        }
    }

    #[test]
    fn bench_file_migrates_the_flat_array_format_and_appends() {
        let one = MlipsComparison {
            id: BenchmarkId::Tak,
            scale: Scale::Paper,
            instructions: 100,
            classic_mips: 10.0,
            flat_mips: 15.0,
            speedup: 1.5,
            floor: 1.3,
            scheduler: "interleaved".to_string(),
            workers: 1,
        };
        // Original format: a bare array of comparisons (without the
        // scheduler/workers fields, which default on deserialisation).
        let legacy = r#"[{"id":"Tak","scale":"Paper","instructions":100,
            "classic_mips":10.0,"flat_mips":15.0,"speedup":1.5,"floor":1.3}]"#;
        let mut file = MlipsFile::parse_or_default(legacy);
        assert_eq!(file.latest.len(), 1);
        assert_eq!(file.history.len(), 1);
        assert_eq!(file.history[0].unix_secs, 0);
        assert_eq!(file.latest[0].workers, 1);
        assert_eq!(file.latest[0].scheduler, "interleaved");

        // A new run becomes `latest` and appends.
        file.record(1234, vec![one.clone(), one.clone()]);
        assert_eq!(file.latest.len(), 2);
        assert_eq!(file.history.len(), 2);
        assert_eq!(file.history[1].unix_secs, 1234);

        // The current format round-trips through parse_or_default.
        let json = serde_json::to_string(&file).unwrap();
        let reparsed = MlipsFile::parse_or_default(&json);
        assert_eq!(reparsed.history.len(), 2);
        assert_eq!(reparsed.latest.len(), 2);

        // Garbage starts fresh.
        assert!(MlipsFile::parse_or_default("not json").latest.is_empty());
    }

    #[test]
    fn harness_measures_a_small_run() {
        let r = measure_mlips(BenchmarkId::Deriv, Scale::Small, 1, false);
        assert!(r.instructions > 0);
        assert!(r.best_secs > 0.0);
        assert!(r.mips() > 0.0);
    }
}
