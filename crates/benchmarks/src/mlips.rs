//! MLIPS throughput harness: raw abstract-machine instructions per second.
//!
//! The overhead gate ([`crate::overhead`]) pins *instruction counts* — how
//! much work the RAP-WAM does relative to the sequential WAM.  This module
//! measures the orthogonal quantity: how fast the host executor retires
//! those instructions.  [`measure_mlips`] runs one registry benchmark on a
//! single strict interleaved PE, times the engine run (compilation and
//! engine construction excluded), and reports millions of instructions per
//! second over the best of `runs` attempts.
//!
//! Because wall-clock throughput is machine-dependent, the regression gate
//! (`mlips_gate` integration test) does not pin absolute numbers.  Instead
//! it measures the flattened executor *and* the classic pre-flattening
//! dispatch path ([`rapwam::session::QueryOptions::classic_dispatch`]) on
//! the same machine in the same process, and gates the ratio: the dense
//! pre-decoded fast path must stay at least [`mlips_speedup_floor`] times
//! faster than the baseline per benchmark.  The measured values are
//! recorded in `BENCH_mlips.json` at the repository root so the raw-speed
//! trajectory is visible across PRs.

use crate::{benchmark, BenchmarkId, Scale};
use rapwam::session::{QueryOptions, Session};
use rapwam::{Engine, Outcome};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput of one benchmark on one strict interleaved PE.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlipsReport {
    pub id: BenchmarkId,
    pub scale: Scale,
    /// Whether the run used the classic (pre-flattening) dispatch path.
    pub classic_dispatch: bool,
    /// Abstract-machine instructions executed by one run.
    pub instructions: u64,
    /// Best wall-clock engine time over all attempts, in seconds.
    pub best_secs: f64,
    /// Number of timed attempts.
    pub runs: usize,
}

impl MlipsReport {
    /// Millions of abstract-machine instructions retired per second.
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.best_secs / 1e6
    }
}

/// Time `id` at `scale` on one strict interleaved PE and report the best-of
/// -`runs` throughput.  Only the engine run is timed: compilation is cached
/// by the session and engine construction (arena allocation) happens before
/// the clock starts.
pub fn measure_mlips(id: BenchmarkId, scale: Scale, runs: usize, classic_dispatch: bool) -> MlipsReport {
    let bench = benchmark(id, scale);
    let mut session =
        Session::new(&bench.program).unwrap_or_else(|e| panic!("{}: parse failed: {e}", id.name()));
    let options = QueryOptions { classic_dispatch, ..QueryOptions::parallel(1) };
    let compiled = session
        .prepare_with(&bench.query, options.compile_options())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", id.name()));
    let mut config = options.engine_config();
    // On a single PE the quantum changes nothing semantically (there is no
    // other worker to interleave with) but it decides how often the driver
    // re-enters `exec_batch`.  The default of 1 would measure the
    // per-entry overhead of the driver, not the dispatch loop; a large
    // quantum lets both paths run their batch loop properly (and is what
    // any throughput-minded embedding would configure).  Applied to the
    // classic path too, so the comparison stays entry-for-entry fair.
    config.quantum = 4096;

    let runs = runs.max(1);
    let mut best_secs = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..runs {
        let engine = Engine::new(&compiled, config.clone());
        let start = Instant::now();
        let result =
            engine.run(session.symbols()).unwrap_or_else(|e| panic!("{}: run failed: {e}", id.name()));
        let secs = start.elapsed().as_secs_f64();
        assert!(matches!(result.outcome, Outcome::Success(_)), "{}: benchmark query failed", id.name());
        instructions = result.stats.instructions;
        best_secs = best_secs.min(secs.max(1e-9));
    }
    MlipsReport { id, scale, classic_dispatch, instructions, best_secs, runs }
}

/// One benchmark's entry in `BENCH_mlips.json`: the flattened fast path
/// against the classic dispatch baseline, measured back to back on the same
/// machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlipsComparison {
    pub id: BenchmarkId,
    pub scale: Scale,
    pub instructions: u64,
    /// MIPS through the classic (pre-flattening) dispatch path.
    pub classic_mips: f64,
    /// MIPS through the flattened (dense pre-decoded) fast path.
    pub flat_mips: f64,
    /// `flat_mips / classic_mips` — the gated quantity.
    pub speedup: f64,
    /// The per-benchmark floor the gate enforces on `speedup`.
    pub floor: f64,
}

/// Measure one benchmark through both dispatch paths and report the gated
/// comparison.  The paths are interleaved run by run (classic, flat,
/// classic, flat, …) so a load spike on the host penalises both equally.
pub fn compare_dispatch_paths(id: BenchmarkId, scale: Scale, runs: usize) -> MlipsComparison {
    let classic = measure_mlips(id, scale, runs, true);
    let flat = measure_mlips(id, scale, runs, false);
    // One more alternating round, keeping each path's best: guards the
    // ratio against one-sided interference from the host.
    let classic2 = measure_mlips(id, scale, runs, true);
    let flat2 = measure_mlips(id, scale, runs, false);
    let classic_mips = classic.mips().max(classic2.mips());
    let flat_mips = flat.mips().max(flat2.mips());
    MlipsComparison {
        id,
        scale,
        instructions: flat.instructions,
        classic_mips,
        flat_mips,
        speedup: flat_mips / classic_mips,
        floor: mlips_speedup_floor(id),
    }
}

/// The gated flattened-over-classic throughput floor per registry program.
///
/// tak and deriv carry the ISSUE's headline requirement (≥ 1.3× over the
/// pre-flattening baseline); the rest of the registry is gated at "no
/// slower than the classic path" with a little measurement headroom, so a
/// regression that re-introduces per-access locking or bounds-checked
/// fetch anywhere trips the gate.
pub fn mlips_speedup_floor(id: BenchmarkId) -> f64 {
    match id {
        BenchmarkId::Tak | BenchmarkId::Deriv => 1.3,
        _ => 0.95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_divides() {
        let r = MlipsReport {
            id: BenchmarkId::Tak,
            scale: Scale::Small,
            classic_dispatch: false,
            instructions: 2_000_000,
            best_secs: 0.5,
            runs: 3,
        };
        assert!((r.mips() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn headline_floors_are_the_issues() {
        assert!(mlips_speedup_floor(BenchmarkId::Tak) >= 1.3);
        assert!(mlips_speedup_floor(BenchmarkId::Deriv) >= 1.3);
        for id in BenchmarkId::EXTENDED {
            assert!(mlips_speedup_floor(id) > 0.0);
        }
    }

    #[test]
    fn harness_measures_a_small_run() {
        let r = measure_mlips(BenchmarkId::Deriv, Scale::Small, 1, false);
        assert!(r.instructions > 0);
        assert!(r.best_secs > 0.0);
        assert!(r.mips() > 0.0);
    }
}
