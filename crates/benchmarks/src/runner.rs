//! Running and validating benchmark instances.

use crate::Benchmark;
use rapwam::session::{QueryOptions, Session, SessionError};
use rapwam::{Outcome, RunResult};

/// How a benchmark's answer is checked.
#[derive(Debug, Clone)]
pub enum Validation {
    /// The named query variable must be bound to this integer.
    EqualsInt { variable: String, expected: i64 },
    /// The named query variable must be bound to this list of integers.
    EqualsList { variable: String, expected: Vec<i64> },
    /// The named query variable must be bound to this matrix (list of lists
    /// of integers).
    EqualsMatrix { variable: String, expected: Vec<Vec<i64>> },
    /// The named query variable must render to this atom.
    EqualsAtom { variable: String, expected: String },
    /// The named variable's rendered value must equal the one produced by a
    /// sequential (WAM) run of the same benchmark.
    MatchesSequential { variable: String },
    /// Only require that the query succeeds.
    SucceedsOnly,
}

/// Summary of one benchmark execution.
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub name: &'static str,
    pub workers: usize,
    pub parallel: bool,
    pub result: RunResult,
}

/// Execute a benchmark with the given options.
pub fn run_benchmark(bench: &Benchmark, options: &QueryOptions) -> Result<RunSummary, SessionError> {
    let mut session = Session::new(&bench.program)?;
    let result = session.run(&bench.query, options)?;
    Ok(RunSummary { name: bench.id.name(), workers: options.workers, parallel: options.parallel, result })
}

/// Execute a benchmark and keep the session (needed to render answers).
pub fn run_benchmark_with_session(
    bench: &Benchmark,
    options: &QueryOptions,
) -> Result<(Session, RunResult), SessionError> {
    let mut session = Session::new(&bench.program)?;
    let result = session.run(&bench.query, options)?;
    Ok((session, result))
}

fn render_list(items: &[i64]) -> String {
    let inner: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", inner.join(","))
}

fn render_matrix(m: &[Vec<i64>]) -> String {
    let rows: Vec<String> = m.iter().map(|r| render_list(r)).collect();
    format!("[{}]", rows.join(","))
}

/// Validate a benchmark result.  Returns an error message when the answer is
/// wrong; `Ok(())` when it checks out.
pub fn validate(bench: &Benchmark, session: &Session, result: &RunResult) -> Result<(), String> {
    let bindings = match &result.outcome {
        Outcome::Success(b) => b,
        Outcome::Failure => return Err(format!("{} query failed", bench.id.name())),
    };
    let lookup = |var: &str| -> Result<String, String> {
        bindings
            .iter()
            .find(|(n, _)| n == var)
            .map(|(_, t)| session.render(t))
            .ok_or_else(|| format!("no binding for {var}"))
    };
    match &bench.validation {
        Validation::SucceedsOnly => Ok(()),
        Validation::EqualsInt { variable, expected } => {
            let got = lookup(variable)?;
            if got == expected.to_string() {
                Ok(())
            } else {
                Err(format!("{}: expected {variable} = {expected}, got {got}", bench.id.name()))
            }
        }
        Validation::EqualsList { variable, expected } => {
            let got = lookup(variable)?;
            let want = render_list(expected);
            if got == want {
                Ok(())
            } else {
                Err(format!("{}: expected {variable} = {want}, got {got}", bench.id.name()))
            }
        }
        Validation::EqualsMatrix { variable, expected } => {
            let got = lookup(variable)?;
            let want = render_matrix(expected);
            if got == want {
                Ok(())
            } else {
                Err(format!("{}: expected {variable} = {want}, got {got}", bench.id.name()))
            }
        }
        Validation::EqualsAtom { variable, expected } => {
            let got = lookup(variable)?;
            if &got == expected {
                Ok(())
            } else {
                Err(format!("{}: expected {variable} = {expected}, got {got}", bench.id.name()))
            }
        }
        Validation::MatchesSequential { variable } => {
            let (seq_session, seq_result) =
                run_benchmark_with_session(bench, &QueryOptions::sequential()).map_err(|e| e.to_string())?;
            let seq = match &seq_result.outcome {
                Outcome::Success(b) => b
                    .iter()
                    .find(|(n, _)| n == variable)
                    .map(|(_, t)| seq_session.render(t))
                    .ok_or_else(|| format!("sequential run has no binding for {variable}"))?,
                Outcome::Failure => return Err("sequential reference run failed".to_string()),
            };
            let got = lookup(variable)?;
            if got == seq {
                Ok(())
            } else {
                Err(format!("{}: parallel answer differs from sequential answer", bench.id.name()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmark, BenchmarkId, Scale};

    #[test]
    fn render_helpers() {
        assert_eq!(render_list(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(render_matrix(&[vec![1], vec![2]]), "[[1],[2]]");
    }

    #[test]
    fn tak_small_runs_and_validates_sequentially() {
        let b = benchmark(BenchmarkId::Tak, Scale::Small);
        let (session, result) = run_benchmark_with_session(&b, &QueryOptions::sequential()).unwrap();
        validate(&b, &session, &result).unwrap();
    }

    #[test]
    fn qsort_small_runs_and_validates_in_parallel() {
        let b = benchmark(BenchmarkId::Qsort, Scale::Small);
        let (session, result) = run_benchmark_with_session(&b, &QueryOptions::parallel(4)).unwrap();
        validate(&b, &session, &result).unwrap();
        assert!(result.stats.parcalls > 0);
    }

    #[test]
    fn wrong_expectation_is_detected() {
        let mut b = benchmark(BenchmarkId::Tak, Scale::Small);
        b.validation = Validation::EqualsInt { variable: "A".to_string(), expected: -1 };
        let (session, result) = run_benchmark_with_session(&b, &QueryOptions::sequential()).unwrap();
        assert!(validate(&b, &session, &result).is_err());
    }
}
