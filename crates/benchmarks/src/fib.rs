//! `fib` — doubly recursive Fibonacci with every level annotated
//! (registry addition).
//!
//! The two recursive calls of each step are independent once the (ground)
//! integer arguments are computed, and *every* recursion level is a CGE —
//! the finest AND-parallel granularity possible, which makes `fib` the
//! worst case for parallelism-management overhead and therefore the
//! sharpest probe of the last-goal-inline optimisation: with the leftmost
//! branch executed inline by the parent, the 1-PE instruction overhead over
//! the sequential WAM must stay under 1.8× (the overhead gate pins it).

use crate::{runner::Validation, Benchmark, BenchmarkId, Scale};

/// The annotated program.
pub const PROGRAM: &str = r#"
fib(0, 0).
fib(1, 1).
fib(N, F) :-
    N > 1,
    N1 is N - 1,
    N2 is N - 2,
    ( ground(N1), ground(N2) | fib(N1, F1) & fib(N2, F2) ),
    F is F1 + F2.
"#;

/// Input argument at each scale.
pub fn input(scale: Scale) -> i64 {
    match scale {
        Scale::Small => 12,
        Scale::Paper => 17,
        Scale::Large => 21,
    }
}

/// Host-side reference implementation used for validation.
pub fn fib(n: i64) -> i64 {
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}

/// Build the benchmark instance.
pub fn build(scale: Scale) -> Benchmark {
    let n = input(scale);
    Benchmark {
        id: BenchmarkId::Fib,
        scale,
        program: PROGRAM.to_string(),
        query: format!("fib({n}, F)"),
        validation: Validation::EqualsInt { variable: "F".to_string(), expected: fib(n) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark_with_session, validate};
    use rapwam::session::QueryOptions;

    #[test]
    fn reference_fib_values() {
        assert_eq!(fib(0), 0);
        assert_eq!(fib(1), 1);
        assert_eq!(fib(12), 144);
        assert_eq!(fib(17), 1597);
    }

    #[test]
    fn small_fib_validates_in_parallel() {
        let b = build(Scale::Small);
        let (session, result) = run_benchmark_with_session(&b, &QueryOptions::parallel(4)).unwrap();
        validate(&b, &session, &result).unwrap();
        assert!(result.stats.parcalls > 0);
    }
}
