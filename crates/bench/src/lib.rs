//! # pwam-bench — experiment harness
//!
//! Regenerates every table and figure of the ICPP'88 paper from the
//! reproduction stack (front-end → compiler → RAP-WAM engine → cache
//! simulator):
//!
//! | Paper artefact | Binary | Library entry point |
//! |---|---|---|
//! | Table 1 (storage objects) | `table1` | [`experiments::table1`] |
//! | Figure 2 (deriv overhead/speedup) | `figure2` | [`experiments::figure2`] |
//! | Table 2 (benchmark statistics, 8 PEs) | `table2` | [`experiments::table2`] |
//! | Table 3 (fit to large benchmarks) | `table3` | [`experiments::table3`] |
//! | Figure 4 (traffic of coherency schemes) | `figure4` | [`experiments::figure4`] |
//! | §3.3 back-of-the-envelope (2 MLIPS) | `mlips` | [`experiments::mlips`] |
//! | allocate-policy ablation | `ablation_alloc` | [`experiments::ablation_alloc`] |
//! | bus-contention model | `ablation_bus` | [`experiments::ablation_bus`] |
//!
//! Each entry point returns a serialisable result structure; the binaries
//! print a human-readable table (with the paper's published values alongside
//! where applicable) and optionally write the raw JSON next to it.

pub mod cli;
pub mod experiments;
pub mod paper;
pub mod table;

pub use experiments::ExperimentScale;
