//! Measure executor throughput (MIPS: millions of abstract-machine
//! instructions per second) through both dispatch paths — the flattened
//! pre-decoded fast path and the classic pre-flattening baseline — and
//! record the comparison in `BENCH_mlips.json`.
//!
//! This is the host-speed companion to the `mlips` binary (which
//! regenerates the paper's Section 3.3 back-of-envelope model from
//! reference counts): that one predicts what 1988 hardware would do, this
//! one measures what the executor actually does on the current host.  The
//! `mlips-gate` CI job runs the same comparison as a test with
//! per-benchmark floors.
//!
//! The output file is append-only across invocations: the new run becomes
//! `latest` and is pushed onto `history`, so the raw-speed trajectory
//! accumulates across PRs.  A pre-existing flat-array file (the original
//! format) is migrated into the first history entry.  The scheduler and
//! worker count come from `PWAM_MLIPS_SCHED` / `PWAM_MLIPS_THREADS` (see
//! `pwam_benchmarks::mlips::mlips_configuration`) and are recorded per
//! report.
//!
//! Usage: `mlips_throughput [--runs N] [--out PATH] [--paper-scale]`

use pwam_benchmarks::mlips::{compare_dispatch_paths, MlipsComparison, MlipsFile};
use pwam_benchmarks::{BenchmarkId, Scale};
use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut runs = 5usize;
    let mut out = String::from("BENCH_mlips.json");
    let mut scale = Scale::Paper;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).expect("--runs N");
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().expect("--out PATH");
            }
            "--small-scale" => scale = Scale::Small,
            "--paper-scale" => scale = Scale::Paper,
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    let mut reports: Vec<MlipsComparison> = Vec::new();
    println!(
        "{:<8} {:>12} {:>14} {:>11} {:>9} {:>7}",
        "bench", "instrs", "classic MIPS", "flat MIPS", "speedup", "floor"
    );
    for id in BenchmarkId::EXTENDED {
        let c = compare_dispatch_paths(id, scale, runs);
        println!(
            "{:<8} {:>12} {:>14.2} {:>11.2} {:>8.2}x {:>7.2}",
            id.name(),
            c.instructions,
            c.classic_mips,
            c.flat_mips,
            c.speedup,
            c.floor
        );
        reports.push(c);
    }

    let mut file = match std::fs::read_to_string(&out) {
        Ok(existing) => MlipsFile::parse_or_default(&existing),
        Err(_) => MlipsFile::default(),
    };
    let now = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    file.record(now, reports);
    let json = serde_json::to_string_pretty(&file).expect("serialise");
    std::fs::write(&out, json + "\n").expect("write report");
    println!("wrote {out} ({} recorded runs)", file.history.len());
}
