//! Regenerate **Table 1** — "Characteristics of RAP-WAM Storage Objects".
//!
//! The table is produced from the same object metadata the engine uses to
//! tag every memory reference, so it is guaranteed to describe the traces
//! actually fed to the cache simulator.

use pwam_bench::experiments::table1;
use pwam_bench::table::TextTable;

fn main() {
    let rows = table1();
    let mut t = TextTable::new(vec!["Frame type", "area", "WAM?", "lock", "locality"]);
    for r in &rows {
        t.row(vec![
            r.frame_type.clone(),
            r.area.clone(),
            if r.in_wam { "yes" } else { "no" }.to_string(),
            if r.locked { "yes" } else { "no" }.to_string(),
            r.locality.clone(),
        ]);
    }
    println!("Table 1: Characteristics of RAP-WAM Storage Objects");
    println!("{}", t.render());
    if std::env::args().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serialise"));
    }
}
