//! `pwam-load` — drive N concurrent clients against a `pwam-serve`
//! instance and report throughput, latency percentiles and pool
//! statistics.
//!
//! ```text
//! pwam-load --addr HOST:PORT [--clients N] [--requests M]
//!           [--benchmarks deriv,tak,qsort,queens] [--workers W]
//!           [--scheduler interleaved|threaded] [--determinism strict|relaxed]
//!           [--deadline-ms N] [--cursor-every N] [--require-reuse]
//!           [--shutdown] [--json]
//! ```
//!
//! Every client cycles through the selected registry benchmarks (at
//! `Scale::Small`) and validates each rendered answer against the
//! registry's expected value.  With `--cursor-every N`, every Nth request
//! is issued through the cursor verbs instead — `query-open`, `query-next`
//! to exhaustion, implicit auto-close — mixing parked-cursor churn into
//! the plain-query load and validating the streamed first answer the same
//! way.  The process exits non-zero when any protocol/server error or
//! wrong answer is observed, and — under `--require-reuse` — when the
//! server reports no warm engine reuse, so CI can gate on both.
//!
//! ## Capacity mode (`--capacity`)
//!
//! ```text
//! pwam-load --capacity --addr HOST:PORT [--arrival-rps 100,200]
//!           [--duration-ms 3000] [--connections 16] [--sweep-connections N]
//!           [--label NAME] [--capacity-out BENCH_server_capacity.json]
//!           [--json] [--shutdown]
//! ```
//!
//! The closed-loop run above measures latency under *self-limiting* load:
//! a slow server slows its own clients down, hiding queueing delay (the
//! coordinated-omission trap).  Capacity mode is **open-loop**: requests
//! arrive on a Poisson schedule fixed before the run, spread over a pool
//! of persistent connections, and every latency is measured from the
//! request's *scheduled arrival* — a request that left late because its
//! connection was still busy is charged that wait.  Sweeping
//! `--arrival-rps` maps the latency-vs-load curve; `--sweep-connections`
//! additionally reports how many simultaneous idle connections the server
//! sustains (the event-loop-vs-threads capacity differential).

use pwam_bench::cli::arg_value;
use pwam_benchmarks::{benchmark, runner::Validation, Benchmark, BenchmarkId, Scale};
use pwam_obs::{parse_histogram, Histogram};
use pwam_server::{AnswerResponse, Client, QueryRequest, Response};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use rapwam::{DeterminismMode, SchedulerKind};
use serde::Serialize;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

fn num_arg(args: &[String], key: &str) -> Option<u64> {
    arg_value(args, key).map(|v| match v.parse() {
        Ok(n) => n,
        Err(_) => usage_error(&format!("{key} {v} (expected a number)")),
    })
}

fn usage_error(what: &str) -> ! {
    eprintln!("invalid argument: {what}");
    std::process::exit(2);
}

/// The rendered answer the registry expects for a benchmark's query
/// variable, if its validation pins one.
fn expected_binding(b: &Benchmark) -> Option<(String, String)> {
    let render_list = |items: &[i64]| {
        let inner: Vec<String> = items.iter().map(|i| i.to_string()).collect();
        format!("[{}]", inner.join(","))
    };
    match &b.validation {
        Validation::EqualsInt { variable, expected } => Some((variable.clone(), expected.to_string())),
        Validation::EqualsList { variable, expected } => Some((variable.clone(), render_list(expected))),
        Validation::EqualsAtom { variable, expected } => Some((variable.clone(), expected.clone())),
        Validation::EqualsMatrix { variable, expected } => {
            let rows: Vec<String> = expected.iter().map(|r| render_list(r)).collect();
            Some((variable.clone(), format!("[{}]", rows.join(","))))
        }
        Validation::MatchesSequential { .. } | Validation::SucceedsOnly => None,
    }
}

#[derive(Debug, Default, Clone, Serialize)]
struct ClientTally {
    requests: u64,
    errors: u64,
    wrong_answers: u64,
    warm: u64,
    /// Requests issued through the cursor verbs.
    cursor_streams: u64,
    /// Answers streamed across all cursor requests.
    cursor_answers: u64,
    latencies_us: Vec<u64>,
    /// Plain-query latencies only (no cursor streams): the population the
    /// server's `pwam_query_request_us` histogram observes, so these are
    /// what the metrics cross-check compares against.
    plain_latencies_us: Vec<u64>,
}

#[derive(Debug, Serialize)]
struct Report {
    clients: usize,
    requests: u64,
    errors: u64,
    wrong_answers: u64,
    warm_responses: u64,
    elapsed_ms: u64,
    throughput_rps: f64,
    latency_mean_us: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    pool_warm_hits: u64,
    pool_cold_builds: u64,
    pool_rejections: u64,
    pool_queue_timeouts: u64,
    pool_max_queue_depth: u64,
    /// Requests driven through the cursor verbs and the answers they
    /// streamed.
    cursor_streams: u64,
    cursor_answers: u64,
    /// Cursor-table deltas reported by the server over the run.
    server_cursors_opened: u64,
    server_cursors_closed: u64,
    server_cursors_evicted: u64,
    /// Cursors still parked when the run ended (should be 0 — every
    /// stream runs to exhaustion).
    server_parked_cursors: u64,
    server_protocol_errors: u64,
    /// Abstract-machine instructions this run added to the server's
    /// cumulative counter.
    server_instructions: u64,
    /// The server's cumulative throughput after the run, in thousandths of
    /// a MLIPS.
    server_mlips_x1000: u64,
    /// Bucket bounds of the server-side whole-request latency percentiles
    /// over this run's window (from the `metrics` scrape; 0 when the
    /// server predates the verb or no plain query ran).
    server_request_p50_bound_us: u64,
    server_request_p99_bound_us: u64,
}

/// One recorded `pwam-load` invocation in `BENCH_server.json`.
#[derive(Debug, Clone, Serialize)]
struct ServerBenchRun {
    /// Seconds since the Unix epoch when the run was recorded.
    unix_secs: u64,
    clients: usize,
    requests: u64,
    throughput_rps: f64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    /// Server-side request-latency bucket bounds for the same window.
    server_request_p50_bound_us: u64,
    server_request_p99_bound_us: u64,
    server_mlips_x1000: u64,
    pool_warm_hits: u64,
    pool_cold_builds: u64,
}

/// On-disk shape of `BENCH_server.json`, mirroring `BENCH_mlips.json`:
/// the most recent run plus every previously recorded one, so the serving
/// tier accumulates a perf trajectory across PRs.
#[derive(Debug, Clone, Default, Serialize)]
struct ServerBenchFile {
    latest: Option<ServerBenchRun>,
    history: Vec<ServerBenchRun>,
}

fn bench_run_from_value(v: &serde_json::Value) -> Option<ServerBenchRun> {
    Some(ServerBenchRun {
        unix_secs: v.get("unix_secs")?.as_u64()?,
        clients: v.get("clients")?.as_u64()? as usize,
        requests: v.get("requests")?.as_u64()?,
        throughput_rps: v.get("throughput_rps")?.as_f64()?,
        latency_p50_us: v.get("latency_p50_us")?.as_u64()?,
        latency_p99_us: v.get("latency_p99_us")?.as_u64()?,
        server_request_p50_bound_us: v.get("server_request_p50_bound_us")?.as_u64()?,
        server_request_p99_bound_us: v.get("server_request_p99_bound_us")?.as_u64()?,
        server_mlips_x1000: v.get("server_mlips_x1000")?.as_u64()?,
        pool_warm_hits: v.get("pool_warm_hits")?.as_u64()?,
        pool_cold_builds: v.get("pool_cold_builds")?.as_u64()?,
    })
}

impl ServerBenchFile {
    /// Parse an existing `BENCH_server.json`; unparseable or absent
    /// content starts a fresh trajectory.
    fn parse_or_default(json: &str) -> ServerBenchFile {
        let Ok(v) = serde_json::from_str(json) else { return ServerBenchFile::default() };
        let parsed = || -> Option<ServerBenchFile> {
            let latest = match v.get("latest") {
                Some(l) if l.get("unix_secs").is_some() => Some(bench_run_from_value(l)?),
                _ => None,
            };
            let history =
                v.get("history")?.as_array()?.iter().map(bench_run_from_value).collect::<Option<Vec<_>>>()?;
            Some(ServerBenchFile { latest, history })
        }();
        parsed.unwrap_or_default()
    }
}

/// Compare a client-side percentile value against the server histogram's
/// bucket bound for the same percentile: they must land within one log₂
/// bucket of each other (the histogram's resolution).  Returns an error
/// description on a mismatch.
fn cross_check(name: &str, client_us: u64, server_bound_us: u64) -> Result<(), String> {
    let client_bucket = Histogram::bucket_index(client_us) as i64;
    let server_bucket = Histogram::bucket_index(server_bound_us) as i64;
    if (client_bucket - server_bucket).abs() <= 1 {
        Ok(())
    } else {
        Err(format!(
            "{name}: client {client_us}us (bucket {client_bucket}) vs server bound \
             {server_bound_us}us (bucket {server_bucket}) differ by more than one bucket"
        ))
    }
}

/// Check one answer against the registry's pinned value for `b`.
fn answer_ok(b: &Benchmark, a: &AnswerResponse) -> bool {
    match expected_binding(b) {
        _ if !a.success => false,
        Some((var, expected)) => a.bindings.iter().any(|(n, v)| n == &var && v == &expected),
        None => true,
    }
}

/// Upper bound on answers drained per cursor stream (the registry
/// benchmarks are deterministic, but a misbehaving server must not hang
/// the load generator).
const MAX_STREAM_ANSWERS: u64 = 64;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pwam-load --addr HOST:PORT [--clients N] [--requests M]\n\
             \x20                [--benchmarks deriv,tak,qsort,queens] [--workers W]\n\
             \x20                [--scheduler NAME] [--determinism NAME] [--deadline-ms N]\n\
             \x20                [--cursor-every N] [--require-reuse] [--shutdown] [--json]\n\
             \x20                [--bench-out BENCH_server.json]\n\
             \x20      pwam-load --capacity --addr HOST:PORT [--arrival-rps 100,200]\n\
             \x20                [--duration-ms 3000] [--connections 16]\n\
             \x20                [--sweep-connections N] [--label NAME]\n\
             \x20                [--capacity-out BENCH_server_capacity.json] [--json] [--shutdown]"
        );
        return;
    }
    if args.iter().any(|a| a == "--capacity") {
        run_capacity(&args);
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| usage_error("--addr is required"));
    let clients = num_arg(&args, "--clients").unwrap_or(4).max(1) as usize;
    let requests = num_arg(&args, "--requests").unwrap_or(25).max(1);
    let workers = num_arg(&args, "--workers").unwrap_or(2).max(1) as usize;
    let deadline_ms = num_arg(&args, "--deadline-ms");
    // 0 = plain queries only; N = every Nth request per client streams
    // through a cursor instead.
    let cursor_every = num_arg(&args, "--cursor-every").unwrap_or(0) as usize;
    let scheduler = match arg_value(&args, "--scheduler") {
        None => SchedulerKind::Interleaved,
        Some(name) => SchedulerKind::parse(&name).unwrap_or_else(|| {
            usage_error(&format!("--scheduler {name} (expected interleaved or threaded)"))
        }),
    };
    let determinism = match arg_value(&args, "--determinism") {
        None => DeterminismMode::Strict,
        Some(name) => DeterminismMode::parse(&name)
            .unwrap_or_else(|| usage_error(&format!("--determinism {name} (expected strict or relaxed)"))),
    };
    let bench_names =
        arg_value(&args, "--benchmarks").unwrap_or_else(|| "deriv,tak,qsort,queens".to_string());
    let benches: Vec<Benchmark> = bench_names
        .split(',')
        .map(|name| {
            let id = BenchmarkId::parse(name.trim())
                .unwrap_or_else(|| usage_error(&format!("--benchmarks {name} (unknown benchmark)")));
            benchmark(id, Scale::Small)
        })
        .collect();
    let json = args.iter().any(|a| a == "--json");
    let require_reuse = args.iter().any(|a| a == "--require-reuse");
    let send_shutdown = args.iter().any(|a| a == "--shutdown");
    let bench_out = arg_value(&args, "--bench-out");

    // Pool stats before the run, so the report shows this run's deltas.
    let before = Client::connect(&addr).and_then(|mut c| c.stats()).unwrap_or_else(|e| {
        eprintln!("pwam-load: cannot reach server at {addr}: {e}");
        std::process::exit(1);
    });
    // Metrics scrape before the run: differencing the request-latency
    // histogram across the run isolates this run's window even against a
    // long-lived server.
    let before_request_hist = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .and_then(|text| parse_histogram(&text, "pwam_query_request_us"))
        .unwrap_or_default();

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let addr = addr.clone();
                let benches = &benches;
                s.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut client = match Client::connect(&addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("client {client_idx}: connect failed: {e}");
                            tally.errors += 1;
                            return tally;
                        }
                    };
                    for i in 0..requests {
                        let b = &benches[(client_idx + i as usize) % benches.len()];
                        let req = QueryRequest {
                            program: b.program.clone(),
                            query: b.query.clone(),
                            workers,
                            parallel: true,
                            scheduler,
                            determinism,
                            deadline_ms,
                            ..QueryRequest::default()
                        };
                        let sent = Instant::now();
                        tally.requests += 1;
                        let use_cursor = cursor_every > 0 && (i as usize).is_multiple_of(cursor_every);
                        if use_cursor {
                            // Stream the same benchmark through the cursor
                            // verbs: open, next to exhaustion (auto-close),
                            // validating the first answer.
                            tally.cursor_streams += 1;
                            let cursor = match client.query_open(req) {
                                Ok(id) => id,
                                Err(e) => {
                                    tally.errors += 1;
                                    eprintln!("client {client_idx}: {} query-open failed: {e}", b.id.name());
                                    continue;
                                }
                            };
                            let mut first: Option<AnswerResponse> = None;
                            let mut answers = 0;
                            loop {
                                match client.query_next(cursor) {
                                    Ok(Some(a)) => {
                                        answers += 1;
                                        if first.is_none() {
                                            first = Some(a);
                                        }
                                        if answers >= MAX_STREAM_ANSWERS {
                                            let _ = client.query_close(cursor);
                                            break;
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(e) => {
                                        tally.errors += 1;
                                        eprintln!(
                                            "client {client_idx}: {} query-next failed: {e}",
                                            b.id.name()
                                        );
                                        break;
                                    }
                                }
                            }
                            tally.latencies_us.push(sent.elapsed().as_micros() as u64);
                            tally.cursor_answers += answers;
                            match first {
                                Some(a) => {
                                    if a.warm {
                                        tally.warm += 1;
                                    }
                                    if !answer_ok(b, &a) {
                                        tally.wrong_answers += 1;
                                        eprintln!(
                                            "client {client_idx}: {} streamed a wrong first answer: {:?}",
                                            b.id.name(),
                                            a.bindings
                                        );
                                    }
                                }
                                None => {
                                    tally.wrong_answers += 1;
                                    eprintln!("client {client_idx}: {} streamed no answers", b.id.name());
                                }
                            }
                            continue;
                        }
                        match client.query(req) {
                            Ok(Response::Answer(a)) => {
                                let us = sent.elapsed().as_micros() as u64;
                                tally.latencies_us.push(us);
                                tally.plain_latencies_us.push(us);
                                if a.warm {
                                    tally.warm += 1;
                                }
                                if !answer_ok(b, &a) {
                                    tally.wrong_answers += 1;
                                    eprintln!(
                                        "client {client_idx}: {} answered wrongly: success={} bindings={:?}",
                                        b.id.name(),
                                        a.success,
                                        a.bindings
                                    );
                                }
                            }
                            Ok(other) => {
                                tally.errors += 1;
                                eprintln!("client {client_idx}: {} error: {other:?}", b.id.name());
                            }
                            Err(e) => {
                                tally.errors += 1;
                                eprintln!("client {client_idx}: transport error: {e}");
                                return tally;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    let after = Client::connect(&addr).and_then(|mut c| c.stats()).unwrap_or_default();
    // End-of-run metrics scrape: the request-latency histogram for this
    // run's window, for the client/server percentile cross-check.
    let request_window = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .and_then(|text| parse_histogram(&text, "pwam_query_request_us"))
        .map(|h| h.since(&before_request_hist));
    if send_shutdown {
        if let Ok(mut c) = Client::connect(&addr) {
            let _ = c.shutdown();
        }
    }

    let mut latencies: Vec<u64> = tallies.iter().flat_map(|t| t.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let total_requests: u64 = tallies.iter().map(|t| t.requests).sum();
    let errors: u64 = tallies.iter().map(|t| t.errors).sum();
    let wrong: u64 = tallies.iter().map(|t| t.wrong_answers).sum();
    let warm: u64 = tallies.iter().map(|t| t.warm).sum();
    let cursor_streams: u64 = tallies.iter().map(|t| t.cursor_streams).sum();
    let cursor_answers: u64 = tallies.iter().map(|t| t.cursor_answers).sum();
    let delta = |key: &str| after.get(key).unwrap_or(0).saturating_sub(before.get(key).unwrap_or(0));
    let mean = if latencies.is_empty() { 0 } else { latencies.iter().sum::<u64>() / latencies.len() as u64 };

    // Client/server latency cross-check: the client-side plain-query
    // percentiles must land within one log₂ bucket of the server's
    // request-latency histogram for the same window.  Loopback transport
    // adds microseconds, not buckets, so a wider gap means one of the two
    // measurements is lying.
    let mut plain: Vec<u64> = tallies.iter().flat_map(|t| t.plain_latencies_us.iter().copied()).collect();
    plain.sort_unstable();
    let server_p50 = request_window.as_ref().and_then(|w| w.percentile_bound(50.0)).unwrap_or(0);
    let server_p99 = request_window.as_ref().and_then(|w| w.percentile_bound(99.0)).unwrap_or(0);
    let mut cross_check_failures: Vec<String> = Vec::new();
    if !plain.is_empty() && server_p50 > 0 {
        for (name, p, bound) in [("p50", 0.50, server_p50), ("p99", 0.99, server_p99)] {
            if let Err(e) = cross_check(name, percentile(&plain, p), bound) {
                cross_check_failures.push(e);
            }
        }
    }

    let report = Report {
        clients,
        requests: total_requests,
        errors,
        wrong_answers: wrong,
        warm_responses: warm,
        elapsed_ms: elapsed.as_millis() as u64,
        throughput_rps: total_requests as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_mean_us: mean,
        latency_p50_us: percentile(&latencies, 0.50),
        latency_p99_us: percentile(&latencies, 0.99),
        pool_warm_hits: delta("pool_warm_hits"),
        pool_cold_builds: delta("pool_cold_builds"),
        pool_rejections: delta("pool_rejections"),
        pool_queue_timeouts: delta("pool_queue_timeouts"),
        pool_max_queue_depth: after.get("pool_max_queue_depth").unwrap_or(0),
        cursor_streams,
        cursor_answers,
        server_cursors_opened: delta("cursors_opened"),
        server_cursors_closed: delta("cursors_closed"),
        server_cursors_evicted: delta("cursors_evicted"),
        server_parked_cursors: after.get("parked_cursors").unwrap_or(0),
        server_protocol_errors: delta("protocol_errors"),
        server_instructions: delta("instructions"),
        server_mlips_x1000: after.get("mlips_x1000").unwrap_or(0),
        server_request_p50_bound_us: server_p50,
        server_request_p99_bound_us: server_p99,
    };

    if json {
        println!("{}", serde_json::to_string_pretty(&report).expect("serialise"));
    } else {
        println!("pwam-load: {} clients x {} requests against {addr}", report.clients, requests);
        println!(
            "  {} requests in {:?}  ({:.1} req/s)",
            report.requests,
            Duration::from_millis(report.elapsed_ms),
            report.throughput_rps
        );
        println!(
            "  latency  mean {}us  p50 {}us  p99 {}us",
            report.latency_mean_us, report.latency_p50_us, report.latency_p99_us
        );
        if report.server_request_p50_bound_us > 0 {
            println!(
                "  server   request p50 <= {}us  p99 <= {}us  (metrics histogram)",
                report.server_request_p50_bound_us, report.server_request_p99_bound_us
            );
        }
        println!(
            "  pool     warm {}  cold {}  rejected {}  queue-timeout {}  max-depth {}",
            report.pool_warm_hits,
            report.pool_cold_builds,
            report.pool_rejections,
            report.pool_queue_timeouts,
            report.pool_max_queue_depth
        );
        println!(
            "  engine   {} instructions  cumulative {:.3} MLIPS",
            report.server_instructions,
            report.server_mlips_x1000 as f64 / 1000.0
        );
        if report.cursor_streams > 0 {
            println!(
                "  cursors  {} streams / {} answers  opened {}  closed {}  evicted {}  parked {}",
                report.cursor_streams,
                report.cursor_answers,
                report.server_cursors_opened,
                report.server_cursors_closed,
                report.server_cursors_evicted,
                report.server_parked_cursors
            );
        }
        println!(
            "  errors   transport/server {}  wrong answers {}  protocol {}",
            report.errors, report.wrong_answers, report.server_protocol_errors
        );
    }

    // Record the run in the serving tier's perf-trajectory file (same
    // {latest, history[]} shape as BENCH_mlips.json).
    if let Some(path) = bench_out {
        let mut file = std::fs::read_to_string(&path)
            .map(|json| ServerBenchFile::parse_or_default(&json))
            .unwrap_or_default();
        let run = ServerBenchRun {
            unix_secs: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
            clients: report.clients,
            requests: report.requests,
            throughput_rps: report.throughput_rps,
            latency_p50_us: report.latency_p50_us,
            latency_p99_us: report.latency_p99_us,
            server_request_p50_bound_us: report.server_request_p50_bound_us,
            server_request_p99_bound_us: report.server_request_p99_bound_us,
            server_mlips_x1000: report.server_mlips_x1000,
            pool_warm_hits: report.pool_warm_hits,
            pool_cold_builds: report.pool_cold_builds,
        };
        file.latest = Some(run.clone());
        file.history.push(run);
        let json = serde_json::to_string_pretty(&file).expect("serialise bench record");
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("pwam-load: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("pwam-load: recorded run in {path} ({} total)", file.history.len());
    }

    for failure in &cross_check_failures {
        eprintln!("pwam-load: latency cross-check failed: {failure}");
    }
    if errors > 0 || wrong > 0 || report.server_protocol_errors > 0 || !cross_check_failures.is_empty() {
        std::process::exit(1);
    }
    if require_reuse && report.pool_warm_hits == 0 {
        eprintln!("pwam-load: --require-reuse: the server reported no warm engine reuse");
        std::process::exit(1);
    }
    // Smoke assertion on the stats verb itself: a run that completed
    // queries must have moved the server's cumulative instruction counter.
    let completed = total_requests.saturating_sub(errors);
    if completed > 0 && report.server_instructions == 0 {
        eprintln!("pwam-load: server stats reported zero executed instructions after {completed} queries");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// Capacity mode: open-loop Poisson arrivals + connection sweep
// ---------------------------------------------------------------------

/// One measured point on the latency-vs-load curve.
#[derive(Debug, Clone, Serialize)]
struct CapacityPoint {
    /// Offered Poisson arrival rate, requests per second.
    arrival_rps: f64,
    /// Arrivals the schedule offered over the window.
    offered: u64,
    completed: u64,
    errors: u64,
    /// Completions per second actually achieved.
    throughput_rps: f64,
    /// All latencies are measured from the request's *scheduled* arrival,
    /// so queueing behind a busy connection is charged to the server.
    latency_mean_us: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    latency_max_us: u64,
}

/// On-disk record of one capacity run (`BENCH_server_capacity.json` keeps
/// `{latest, history[]}` like the other trajectory files; history entries
/// are carried as raw JSON so old shapes survive).
#[derive(Debug, Serialize)]
struct CapacityRun {
    unix_secs: u64,
    /// Free-form tag for what was measured (e.g. `event-loop`, `threads`).
    label: String,
    connections: usize,
    duration_ms: u64,
    points: Vec<CapacityPoint>,
    /// Simultaneous idle connections sustained by the sweep (0 = sweep
    /// not requested).
    connections_sustained: u64,
    /// Protocol errors the server charged during the run (must be 0).
    server_protocol_errors: u64,
    /// Server-side whole-request p99 bucket bound over the run's window.
    server_request_p99_bound_us: u64,
}

/// Exponential inter-arrival time (seconds) for a Poisson process.
fn exp_interval(rng: &mut StdRng, rate_per_sec: f64) -> f64 {
    // Inverse-CDF sampling; keep the uniform away from 0 so ln is finite.
    let unit = (((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64).min(1.0);
    -unit.ln() / rate_per_sec
}

/// How many simultaneous connections the server sustains: open up to
/// `target` sockets, ping each once, and keep them all open while the
/// next ones arrive — the count stops at the first shed or failure.
fn sweep_connections(addr: &str, target: usize) -> u64 {
    let mut held: Vec<Client> = Vec::with_capacity(target);
    for _ in 0..target {
        let Ok(mut client) = Client::connect(addr) else { break };
        if client.ping().is_err() {
            break;
        }
        held.push(client);
    }
    // Everything already admitted must still be responsive with the full
    // population open — a server that accepts but wedges does not count.
    let mut sustained = 0;
    for client in held.iter_mut() {
        if client.ping().is_err() {
            break;
        }
        sustained += 1;
    }
    sustained
}

/// Drive one open-loop measurement window at `rate_per_sec`.
fn capacity_point(
    addr: &str,
    benches: &[Benchmark],
    workers: usize,
    connections: usize,
    rate_per_sec: f64,
    duration: Duration,
) -> CapacityPoint {
    // Superposition: `connections` independent Poisson streams at
    // rate/connections sum to a Poisson stream at the full rate, and each
    // connection can pre-compute its own schedule without coordination.
    let per_conn_rate = rate_per_sec / connections.max(1) as f64;
    let outcomes: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_idx| {
                s.spawn(move || {
                    let mut rng =
                        StdRng::seed_from_u64(0xCAFE_F00D ^ (conn_idx as u64) << 17 ^ rate_per_sec.to_bits());
                    // The whole arrival schedule is fixed before the first
                    // request: open-loop arrivals never adapt to server
                    // slowness.
                    let mut offsets = Vec::new();
                    let mut t = exp_interval(&mut rng, per_conn_rate);
                    while t < duration.as_secs_f64() {
                        offsets.push(Duration::from_secs_f64(t));
                        t += exp_interval(&mut rng, per_conn_rate);
                    }
                    let mut errors = 0u64;
                    let mut latencies = Vec::with_capacity(offsets.len());
                    let offered = offsets.len() as u64;
                    let Ok(mut client) = Client::connect(addr) else {
                        return (offered, offered, latencies);
                    };
                    let started = Instant::now();
                    for (k, offset) in offsets.iter().enumerate() {
                        let scheduled = started + *offset;
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        // A late send (the connection was still busy) is
                        // NOT excused: latency runs from `scheduled`.
                        let b = &benches[(conn_idx + k) % benches.len()];
                        let req = QueryRequest {
                            program: b.program.clone(),
                            query: b.query.clone(),
                            workers,
                            parallel: true,
                            ..QueryRequest::default()
                        };
                        match client.query(req) {
                            Ok(Response::Answer(a)) if answer_ok(b, &a) => {
                                latencies.push(scheduled.elapsed().as_micros() as u64);
                            }
                            Ok(_) | Err(_) => errors += 1,
                        }
                    }
                    (offered, errors, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("capacity connection thread")).collect()
    });
    let offered: u64 = outcomes.iter().map(|(o, _, _)| o).sum();
    let errors: u64 = outcomes.iter().map(|(_, e, _)| e).sum();
    let mut latencies: Vec<u64> = outcomes.into_iter().flat_map(|(_, _, l)| l).collect();
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let mean = if latencies.is_empty() { 0 } else { latencies.iter().sum::<u64>() / completed };
    CapacityPoint {
        arrival_rps: rate_per_sec,
        offered,
        completed,
        errors,
        throughput_rps: completed as f64 / duration.as_secs_f64(),
        latency_mean_us: mean,
        latency_p50_us: percentile(&latencies, 0.50),
        latency_p99_us: percentile(&latencies, 0.99),
        latency_max_us: latencies.last().copied().unwrap_or(0),
    }
}

fn run_capacity(args: &[String]) {
    let addr = arg_value(args, "--addr").unwrap_or_else(|| usage_error("--addr is required"));
    let rates: Vec<f64> = arg_value(args, "--arrival-rps")
        .unwrap_or_else(|| "100,200".to_string())
        .split(',')
        .map(|r| match r.trim().parse::<f64>() {
            Ok(v) if v > 0.0 => v,
            _ => usage_error(&format!("--arrival-rps {r} (expected positive numbers)")),
        })
        .collect();
    let duration = Duration::from_millis(num_arg(args, "--duration-ms").unwrap_or(3_000).max(100));
    let connections = num_arg(args, "--connections").unwrap_or(16).max(1) as usize;
    let sweep_target = num_arg(args, "--sweep-connections").unwrap_or(0) as usize;
    let workers = num_arg(args, "--workers").unwrap_or(2).max(1) as usize;
    let label = arg_value(args, "--label").unwrap_or_else(|| "default".to_string());
    let capacity_out = arg_value(args, "--capacity-out");
    let json = args.iter().any(|a| a == "--json");
    let send_shutdown = args.iter().any(|a| a == "--shutdown");
    let bench_names = arg_value(args, "--benchmarks").unwrap_or_else(|| "deriv,tak,qsort,queens".to_string());
    let benches: Vec<Benchmark> = bench_names
        .split(',')
        .map(|name| {
            let id = BenchmarkId::parse(name.trim())
                .unwrap_or_else(|| usage_error(&format!("--benchmarks {name} (unknown benchmark)")));
            benchmark(id, Scale::Small)
        })
        .collect();

    let before = Client::connect(&addr).and_then(|mut c| c.stats()).unwrap_or_else(|e| {
        eprintln!("pwam-load: cannot reach server at {addr}: {e}");
        std::process::exit(1);
    });
    let before_hist = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .and_then(|text| parse_histogram(&text, "pwam_query_request_us"))
        .unwrap_or_default();

    // One throwaway warmup query so cold pool builds don't pollute the
    // first measured point.
    if let Ok(mut c) = Client::connect(&addr) {
        let b = &benches[0];
        let _ = c.query(QueryRequest {
            program: b.program.clone(),
            query: b.query.clone(),
            workers,
            parallel: true,
            ..QueryRequest::default()
        });
    }

    let points: Vec<CapacityPoint> = rates
        .iter()
        .map(|&rate| {
            let point = capacity_point(&addr, &benches, workers, connections, rate, duration);
            if !json {
                println!(
                    "pwam-load: capacity @ {rate:.0} req/s offered {} completed {} errors {}  \
                     p50 {}us  p99 {}us  max {}us",
                    point.offered,
                    point.completed,
                    point.errors,
                    point.latency_p50_us,
                    point.latency_p99_us,
                    point.latency_max_us
                );
            }
            point
        })
        .collect();

    let sustained = if sweep_target > 0 { sweep_connections(&addr, sweep_target) } else { 0 };
    if sweep_target > 0 && !json {
        println!("pwam-load: connection sweep sustained {sustained} of {sweep_target} connections");
    }

    let after = Client::connect(&addr).and_then(|mut c| c.stats()).unwrap_or_default();
    let window = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .and_then(|text| parse_histogram(&text, "pwam_query_request_us"))
        .map(|h| h.since(&before_hist));
    let server_p99 = window.as_ref().and_then(|w| w.percentile_bound(99.0)).unwrap_or(0);
    let protocol_errors =
        after.get("protocol_errors").unwrap_or(0).saturating_sub(before.get("protocol_errors").unwrap_or(0));
    if send_shutdown {
        if let Ok(mut c) = Client::connect(&addr) {
            let _ = c.shutdown();
        }
    }

    let run = CapacityRun {
        unix_secs: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        label,
        connections,
        duration_ms: duration.as_millis() as u64,
        points,
        connections_sustained: sustained,
        server_protocol_errors: protocol_errors,
        server_request_p99_bound_us: server_p99,
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&run).expect("serialise"));
    } else {
        println!(
            "pwam-load: capacity run label={} server-p99<= {}us protocol-errors {}",
            run.label, run.server_request_p99_bound_us, run.server_protocol_errors
        );
    }

    if let Some(path) = capacity_out {
        // {latest, history[]}: prior runs (any shape) ride along as raw
        // JSON; the fresh run becomes `latest` and joins the history.
        let prior = std::fs::read_to_string(&path).ok().and_then(|text| serde_json::from_str(&text).ok());
        let mut history: Vec<serde_json::Value> = prior
            .as_ref()
            .and_then(|v| v.get("history"))
            .and_then(|h| h.as_array())
            .map(<[serde_json::Value]>::to_vec)
            .unwrap_or_default();
        let latest = serde_json::to_value(&run);
        history.push(latest.clone());
        let runs = history.len();
        let file = serde_json::Value::Object(vec![
            ("latest".to_string(), latest),
            ("history".to_string(), serde_json::Value::Array(history)),
        ]);
        let text = file.to_json_pretty();
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("pwam-load: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("pwam-load: recorded capacity run in {path} ({runs} total)");
    }

    let errors: u64 = run.points.iter().map(|p| p.errors).sum();
    if errors > 0 || run.server_protocol_errors > 0 {
        eprintln!(
            "pwam-load: capacity run saw {errors} request errors and {} protocol errors",
            run.server_protocol_errors
        );
        std::process::exit(1);
    }
    if sweep_target > 0 && sustained < sweep_target as u64 {
        eprintln!("pwam-load: sustained only {sustained} of the requested {sweep_target} connections");
        std::process::exit(1);
    }
}
