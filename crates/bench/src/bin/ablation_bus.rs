//! Ablation: bus-contention model across PE counts.
//!
//! Complements Figure 4 with the time dimension the paper defers to Tick's
//! queueing model: given the measured traffic ratio, how does shared-memory
//! efficiency degrade as PEs are added, and where does the bus saturate?
//!
//! Usage: `ablation_bus [--scale small|paper|large] [--threads N] [--json]`

use pwam_bench::experiments::ablation_bus;
use pwam_bench::table::{f2, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = pwam_bench::cli::scale_arg(&args);
    pwam_bench::cli::scheduler_args(&args);

    let pe_counts = [1usize, 2, 4, 8, 12, 16, 24, 32, 48, 64];
    let results = ablation_bus(scale, &pe_counts);
    println!("Bus-contention model (qsort trace, 1024-word broadcast caches, scale {scale:?})\n");
    let mut t = TextTable::new(vec!["# PEs", "offered util", "bus util", "efficiency", "MLIPS"]);
    for r in &results {
        t.row(vec![
            r.num_pes.to_string(),
            f2(r.offered_utilisation),
            f2(r.utilisation),
            f2(r.efficiency),
            f2(r.effective_mlips),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: efficiency stays high for small to medium PE counts (the");
    println!("paper's \"cost-effective small-scale systems\"), then collapses once the");
    println!("offered utilisation approaches 1 and the bus saturates.");

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&results).expect("serialise"));
    }
}
