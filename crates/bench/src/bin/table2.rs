//! Regenerate **Table 2** — "Statistics for the Benchmarks Used (8 processors)".
//!
//! Usage: `table2 [--scale small|paper|large] [--workers N] [--threads N] [--json]`

use pwam_bench::cli::{arg_value, scale_arg, scheduler_args};
use pwam_bench::experiments::table2;
use pwam_bench::paper;
use pwam_bench::table::{f2, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_arg(&args);
    let threads = scheduler_args(&args);
    let workers: usize = arg_value(&args, "--workers").and_then(|s| s.parse().ok()).or(threads).unwrap_or(8);

    let result = table2(scale, workers);
    let mut t = TextTable::new(vec!["Parameter", "deriv", "tak", "qsort", "matrix"]);
    let col = |f: &dyn Fn(&pwam_bench::experiments::Table2Row) -> String| -> Vec<String> {
        result.rows.iter().map(f).collect()
    };
    let mut push_row = |name: &str, values: Vec<String>| {
        let mut cells = vec![name.to_string()];
        cells.extend(values);
        t.row(cells);
    };
    push_row("Instructions executed", col(&|r| r.instructions.to_string()));
    push_row("References (RAP-WAM)", col(&|r| r.refs_rapwam.to_string()));
    push_row("References (WAM)", col(&|r| r.refs_wam.to_string()));
    push_row("Goals actually in //", col(&|r| r.goals_in_parallel.to_string()));
    push_row("Refs / instruction", col(&|r| f2(r.refs_per_instruction)));
    push_row("RAP-WAM overhead", col(&|r| format!("{:.1}%", 100.0 * r.overhead)));

    println!("Table 2: Statistics for the Benchmarks Used ({} processors, scale {:?})", workers, scale);
    println!("{}", t.render());

    println!("Paper's published values (8 processors, the authors' inputs):");
    let mut p = TextTable::new(vec!["Parameter", "deriv", "tak", "qsort", "matrix"]);
    p.row(vec![
        "Instructions executed".to_string(),
        paper::TABLE2[0].instructions.to_string(),
        paper::TABLE2[1].instructions.to_string(),
        paper::TABLE2[2].instructions.to_string(),
        paper::TABLE2[3].instructions.to_string(),
    ]);
    p.row(vec![
        "References (RAP-WAM)".to_string(),
        paper::TABLE2[0].refs_rapwam.to_string(),
        paper::TABLE2[1].refs_rapwam.to_string(),
        paper::TABLE2[2].refs_rapwam.to_string(),
        paper::TABLE2[3].refs_rapwam.to_string(),
    ]);
    p.row(vec![
        "References (WAM)".to_string(),
        paper::TABLE2[0].refs_wam.to_string(),
        paper::TABLE2[1].refs_wam.to_string(),
        paper::TABLE2[2].refs_wam.to_string(),
        paper::TABLE2[3].refs_wam.to_string(),
    ]);
    p.row(vec![
        "Goals actually in //".to_string(),
        paper::TABLE2[0].goals_in_parallel.to_string(),
        paper::TABLE2[1].goals_in_parallel.to_string(),
        paper::TABLE2[2].goals_in_parallel.to_string(),
        paper::TABLE2[3].goals_in_parallel.to_string(),
    ]);
    println!("{}", p.render());

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&result).expect("serialise"));
    }
}
