//! Regenerate **Figure 2** — "RAP-WAM Overheads for deriv".
//!
//! Runs the deriv benchmark on an increasing number of PEs and reports the
//! total work (references, as a percentage of the sequential WAM work), the
//! speed-up over the WAM, and worker utilisation.  The paper's claim is that
//! the parallelism-management overhead stays small (~15% at 40 PEs even for
//! this fine-granularity benchmark) while speed-up keeps growing.
//!
//! Usage: `figure2 [--scale small|paper|large] [--max-pes N] [--threads N] [--json]`

use pwam_bench::cli::{arg_value, scale_arg, scheduler_args};
use pwam_bench::experiments::figure2;
use pwam_bench::table::{f2, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_arg(&args);
    scheduler_args(&args);
    let max_pes: usize = arg_value(&args, "--max-pes").and_then(|s| s.parse().ok()).unwrap_or(40);

    let pe_counts: Vec<usize> =
        [1usize, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40].iter().copied().filter(|&p| p <= max_pes).collect();
    let fig = figure2(scale, &pe_counts);

    println!("Figure 2: RAP-WAM overheads and speed-up for deriv (scale {scale:?})");
    println!("sequential WAM: {} references, {} cycles\n", fig.wam_refs, fig.wam_cycles);
    let mut t = TextTable::new(vec!["# PEs", "work (% of WAM)", "overhead", "speedup", "utilisation"]);
    for p in &fig.points {
        t.row(vec![
            p.pes.to_string(),
            f2(p.work_pct_of_wam),
            format!("{:.1}%", p.work_pct_of_wam - 100.0),
            f2(p.speedup),
            format!("{:.0}%", 100.0 * p.utilisation),
        ]);
    }
    println!("{}", t.render());
    println!("Note: the parent executes the leftmost CGE branch inline (last-goal-");
    println!("inline optimisation, made sound by backward execution / parcall");
    println!("cancellation), so 1-PE work sits close to the WAM; overhead grows with");
    println!("actual parallelism as goals are stolen onto other PEs.");
    println!("Paper: overhead for deriv is on the order of 15% for up to 40 processors,");
    println!("and RAP-WAM work on 1 PE is very close to WAM work.");

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&fig).expect("serialise"));
    }
}
