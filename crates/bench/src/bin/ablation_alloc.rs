//! Ablation: write-allocate versus no-write-allocate.
//!
//! Section 3.2 observes that "no-write-allocate is best for small caches;
//! however, miss ratio increases with no-write-allocate".  This binary
//! reproduces that crossover on the deriv trace (8 PEs, write-in broadcast).
//!
//! Usage: `ablation_alloc [--scale small|paper|large] [--threads N] [--json]`

use pwam_bench::experiments::ablation_alloc;
use pwam_bench::paper;
use pwam_bench::table::{f3, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = pwam_bench::cli::scale_arg(&args);
    pwam_bench::cli::scheduler_args(&args);

    let points = ablation_alloc(scale, &paper::FIGURE4_CACHE_SIZES);
    println!("Allocate-policy ablation: deriv, 8 PEs, write-in broadcast (scale {scale:?})\n");
    let mut t = TextTable::new(vec![
        "cache (words)",
        "traffic (write-alloc)",
        "traffic (no-write-alloc)",
        "miss (write-alloc)",
        "miss (no-write-alloc)",
    ]);
    for p in &points {
        t.row(vec![
            p.cache_words.to_string(),
            f3(p.write_allocate),
            f3(p.no_write_allocate),
            f3(p.miss_ratio_write_allocate),
            f3(p.miss_ratio_no_write_allocate),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape (paper): no-write-allocate wins on traffic for small caches,");
    println!("write-allocate wins for large ones, and no-write-allocate always has the");
    println!("higher miss ratio.");

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&points).expect("serialise"));
    }
}
