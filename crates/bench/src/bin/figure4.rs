//! Regenerate **Figure 4** — "Traffic of Coherency Schemes".
//!
//! For each coherency protocol (write-in broadcast, hybrid, conventional
//! write-through — plus the write-through broadcast variant with
//! `--all-protocols`), each PE count in {1,2,4,8} and each cache size in
//! {64..8192} words, report the traffic ratio averaged over the four
//! benchmarks, using 4-word lines and the allocate policy the paper selected
//! per size.
//!
//! Usage: `figure4 [--scale small|paper|large] [--threads N] [--all-protocols] [--json]`

use pwam_bench::experiments::figure4;
use pwam_bench::paper;
use pwam_bench::table::{f3, TextTable};
use pwam_cachesim::Protocol;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = pwam_bench::cli::scale_arg(&args);
    pwam_bench::cli::scheduler_args(&args);
    let protocols: Vec<Protocol> = if args.iter().any(|a| a == "--all-protocols") {
        vec![
            Protocol::WriteInBroadcast,
            Protocol::WriteThroughBroadcast,
            Protocol::Hybrid,
            Protocol::WriteThrough,
        ]
    } else {
        vec![Protocol::WriteInBroadcast, Protocol::Hybrid, Protocol::WriteThrough]
    };

    let fig = figure4(scale, &protocols, &paper::FIGURE4_PE_COUNTS, &paper::FIGURE4_CACHE_SIZES);

    println!("Figure 4: mean traffic ratio of the coherency schemes (scale {scale:?})");
    println!("(4-word lines, allocate policy per the paper, averaged over {:?})\n", fig.benchmarks);
    for protocol in protocols.iter().map(|p| p.name()) {
        println!("{protocol}:");
        let mut header = vec!["# PEs".to_string()];
        header.extend(fig.cache_sizes.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for series in fig.series.iter().filter(|s| s.protocol == protocol) {
            let mut cells = vec![format!("{}PE", series.pes)];
            cells.extend(series.points.iter().map(|(_, tr)| f3(*tr)));
            t.row(cells);
        }
        println!("{}", t.render());
    }

    println!("Paper's qualitative results to compare against:");
    println!(" * broadcast <= hybrid <= write-through at every size and PE count;");
    println!(" * the hybrid cache comes close to the broadcast (copy-back) cache;");
    println!(" * 8 PEs with >= 128-word broadcast caches leave < 0.3 of the traffic on the bus;");
    println!(" * write-through broadcast is almost identical to write-in broadcast.");

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&fig).expect("serialise"));
    }
}
