//! `pwam-metrics` — scrape a `pwam-serve` instance's `metrics` (and
//! optionally `events`) verb, print the exposition, and assert required
//! series for CI.
//!
//! ```text
//! pwam-metrics --addr HOST:PORT [--require SERIES]... [--require-present SERIES]...
//!              [--events N] [--quiet]
//! ```
//!
//! `--require SERIES` asserts the series exists **and is nonzero**;
//! `--require-present SERIES` only asserts it exists (gauges may
//! legitimately read 0).  A bare family name (`pwam_pe_steals_total`)
//! sums every labelled series of that family; a full sample name with
//! labels (`pwam_pe_steals_total{pe="1"}`) matches exactly.  The process
//! exits non-zero when any assertion fails, so the CI server-smoke job
//! can gate on "the telemetry plane actually observed the load".

use pwam_bench::cli::arg_value;
use pwam_obs::{parse_sample, sum_family};
use pwam_server::Client;

/// Every value following an occurrence of `key` in `args`.
fn arg_values(args: &[String], key: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == key {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

/// The series' value in the exposition: an exact sample when the name
/// carries labels (or matches a plain sample), else the sum over every
/// labelled series of the family.
fn lookup(text: &str, series: &str) -> Option<u64> {
    if let Some(v) = parse_sample(text, series) {
        return Some(v);
    }
    if series.contains('{') {
        return None;
    }
    // A family with labelled series only: present iff any sample line
    // carries the `family{` prefix.
    let prefix = format!("{series}{{");
    let labelled = text.lines().any(|l| !l.starts_with('#') && l.starts_with(&prefix));
    labelled.then(|| sum_family(text, series))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pwam-metrics --addr HOST:PORT [--require SERIES]...\n\
             \x20                  [--require-present SERIES]... [--events N] [--quiet]"
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| {
        eprintln!("pwam-metrics: --addr is required");
        std::process::exit(2);
    });
    let require = arg_values(&args, "--require");
    let require_present = arg_values(&args, "--require-present");
    let events = arg_value(&args, "--events").map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("pwam-metrics: --events {v} (expected a number)");
            std::process::exit(2);
        })
    });
    let quiet = args.iter().any(|a| a == "--quiet");

    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("pwam-metrics: cannot reach server at {addr}: {e}");
        std::process::exit(1);
    });
    let text = client.metrics().unwrap_or_else(|e| {
        eprintln!("pwam-metrics: metrics scrape failed: {e}");
        std::process::exit(1);
    });
    if !quiet {
        print!("{text}");
    }
    if let Some(n) = events {
        let events = client.events(Some(n)).unwrap_or_else(|e| {
            eprintln!("pwam-metrics: events fetch failed: {e}");
            std::process::exit(1);
        });
        if !quiet {
            eprintln!("--- last {n} lifecycle events ---");
            print!("{events}");
        }
    }

    let mut failures = 0;
    for series in &require {
        match lookup(&text, series) {
            Some(0) => {
                eprintln!("pwam-metrics: required series {series} is zero");
                failures += 1;
            }
            Some(v) => {
                if !quiet {
                    eprintln!("pwam-metrics: ok {series} = {v}");
                }
            }
            None => {
                eprintln!("pwam-metrics: required series {series} is missing");
                failures += 1;
            }
        }
    }
    for series in &require_present {
        match lookup(&text, series) {
            Some(v) => {
                if !quiet {
                    eprintln!("pwam-metrics: ok {series} = {v} (presence)");
                }
            }
            None => {
                eprintln!("pwam-metrics: required series {series} is missing");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("pwam-metrics: {failures} assertion(s) failed");
        std::process::exit(1);
    }
}
