//! Regenerate the **Section 3.3 back-of-the-envelope calculation**: can a
//! shared-memory multiprocessor built from late-1980s parts reach 2 million
//! application inferences per second?
//!
//! Usage: `mlips [--scale small|paper|large] [--threads N] [--json]`

use pwam_bench::experiments::mlips;
use pwam_bench::paper::claims;
use pwam_bench::table::{f2, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = pwam_bench::cli::scale_arg(&args);
    pwam_bench::cli::scheduler_args(&args);

    let m = mlips(scale);
    println!("Section 3.3 back-of-the-envelope (scale {scale:?})");
    println!(
        "measured refs/instruction        : {:.2}   (paper assumes {:.0})",
        m.refs_per_instruction,
        claims::REFS_PER_INSTRUCTION
    );
    println!(
        "measured instructions/inference  : {:.2}   (paper assumes {:.0})",
        m.instructions_per_inference,
        claims::INSTRUCTIONS_PER_INFERENCE
    );
    println!(
        "traffic ratio, 8 PE / 128-word broadcast caches : {:.3} (paper: < 0.3)",
        m.traffic_ratio_8pe_128w
    );
    println!();
    println!(
        "bandwidth demand of {} MLIPS without caches : {:.0} MB/s (paper: 360)",
        claims::TARGET_MLIPS,
        m.demand_mb_per_s
    );
    println!("bus bandwidth required after cache capture  : {:.0} MB/s (paper: 108)", m.bus_demand_mb_per_s);
    println!();
    println!("Bus-contention (M/D/1) model at the measured traffic ratio:");
    let mut t = TextTable::new(vec!["# PEs", "bus util", "wait (us)", "efficiency", "MLIPS"]);
    for r in &m.model {
        t.row(vec![
            r.num_pes.to_string(),
            f2(r.utilisation),
            if r.mean_wait_us.is_finite() {
                format!("{:.3}", r.mean_wait_us)
            } else {
                "saturated".to_string()
            },
            f2(r.efficiency),
            f2(r.effective_mlips),
        ]);
    }
    println!("{}", t.render());
    println!("The paper argues that ~2 MLIPS is attainable with current technology for");
    println!("applications with medium parallelism; the model above shows at which PE");
    println!("count the reproduction reaches that rate.");

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&m).expect("serialise"));
    }
}
