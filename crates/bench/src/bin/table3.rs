//! Regenerate **Table 3** — "Fit of Small Benchmarks to Large Benchmarks".
//!
//! The sequential (WAM) traffic ratios of deriv/tak/qsort are measured at
//! 512- and 1024-word caches and normalised against the published mean and
//! standard deviation of Tick's large sequential Prolog benchmarks (which
//! are not available; the constants come straight from the paper — see
//! DESIGN.md's substitution notes).
//!
//! Usage: `table3 [--scale small|paper|large] [--threads N] [--json]`

use pwam_bench::experiments::table3;
use pwam_bench::paper;
use pwam_bench::table::{f2, f3, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = pwam_bench::cli::scale_arg(&args);
    pwam_bench::cli::scheduler_args(&args);

    let rows = table3(scale);
    println!("Table 3: Fit of Small Benchmarks to Large Benchmarks (scale {scale:?})");
    let mut t = TextTable::new(vec![
        "cache (words)",
        "E_tr (large)",
        "sigma_tr",
        "deriv (tr)",
        "deriv",
        "tak (tr)",
        "tak",
        "qsort (tr)",
        "qsort",
        "mean",
    ]);
    for row in &rows {
        let find = |name: &str| row.entries.iter().find(|e| e.benchmark == name).expect("entry");
        let d = find("deriv");
        let k = find("tak");
        let q = find("qsort");
        t.row(vec![
            row.cache_words.to_string(),
            f3(row.large_bench_mean),
            f3(row.large_bench_sigma),
            f3(d.traffic_ratio),
            f2(d.normalised_deviation),
            f3(k.traffic_ratio),
            f2(k.normalised_deviation),
            f3(q.traffic_ratio),
            f2(q.normalised_deviation),
            f2(row.mean_deviation),
        ]);
    }
    println!("{}", t.render());

    println!("Paper's published normalised deviations (tr - E_tr)/sigma_tr:");
    let mut p = TextTable::new(vec!["cache (words)", "deriv", "tak", "qsort", "mean"]);
    for row in paper::TABLE3 {
        p.row(vec![row.cache_words.to_string(), f2(row.deriv), f2(row.tak), f2(row.qsort), f2(row.mean)]);
    }
    println!("{}", p.render());

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serialise"));
    }
}
