//! The experiment implementations behind every table and figure.
//!
//! All functions are pure "run and summarise" helpers so that the binaries
//! stay thin and the root integration tests can exercise the full pipeline
//! on `ExperimentScale::Small`.

use crate::paper;
use pwam_benchmarks::{benchmark, Benchmark, BenchmarkId, Scale};
use pwam_cachesim::{run_sweep, simulate, BusModel, BusModelResult, CacheConfig, Protocol, SimConfig};
use rapwam::session::{QueryOptions, Session};
use rapwam::{DeterminismMode, MemRef, MemoryConfig, ObjectKind, RunResult, SchedulerKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Process-wide scheduler selection for every engine run the experiments
/// perform.  Binaries set it from `--threads` / `--scheduler`; when unset,
/// the `PWAM_SCHEDULER` environment variable decides, defaulting to the
/// reference interleaved backend.  Both backends produce identical answers
/// and reference counts (pinned by the differential tests), so every table
/// and figure is scheduler-independent.
static SCHEDULER: OnceLock<SchedulerKind> = OnceLock::new();

/// Select the execution backend for subsequent experiment runs.  Returns
/// `false` if a backend was already chosen (first choice wins).
pub fn set_scheduler(kind: SchedulerKind) -> bool {
    SCHEDULER.set(kind).is_ok()
}

/// The execution backend experiments run on.
pub fn scheduler() -> SchedulerKind {
    *SCHEDULER.get_or_init(|| {
        std::env::var("PWAM_SCHEDULER").ok().and_then(|s| SchedulerKind::parse(&s)).unwrap_or_default()
    })
}

/// Process-wide determinism selection, mirroring [`SCHEDULER`]: binaries set
/// it from `--determinism`; when unset, the `PWAM_DETERMINISM` environment
/// variable decides, defaulting to strict.  Every table and figure is
/// determinism-independent on the observables it reports — the relaxed CI
/// job runs the whole small-scale experiment suite to prove exactly that.
static DETERMINISM: OnceLock<DeterminismMode> = OnceLock::new();

/// Select the determinism mode for subsequent experiment runs.  Returns
/// `false` if a mode was already chosen (first choice wins).
pub fn set_determinism(mode: DeterminismMode) -> bool {
    DETERMINISM.set(mode).is_ok()
}

/// The determinism mode experiments run on.
pub fn determinism() -> DeterminismMode {
    *DETERMINISM.get_or_init(|| {
        std::env::var("PWAM_DETERMINISM").ok().and_then(|s| DeterminismMode::parse(&s)).unwrap_or_default()
    })
}

/// Input scale for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Tiny inputs: seconds even in debug builds (used by the test suite).
    Small,
    /// Inputs comparable to the paper's (default for the binaries).
    Paper,
    /// Larger stress inputs.
    Large,
}

impl ExperimentScale {
    pub fn to_benchmark_scale(self) -> Scale {
        match self {
            ExperimentScale::Small => Scale::Small,
            ExperimentScale::Paper => Scale::Paper,
            ExperimentScale::Large => Scale::Large,
        }
    }

    /// Parse a `--scale` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(ExperimentScale::Small),
            "paper" => Some(ExperimentScale::Paper),
            "large" => Some(ExperimentScale::Large),
            _ => None,
        }
    }
}

/// Per-worker area sizes used by the experiments: small enough that a
/// 40-worker Figure 2 run fits comfortably in host memory, large enough for
/// every benchmark at `Paper` scale.
pub fn experiment_memory() -> MemoryConfig {
    MemoryConfig {
        heap_words: 1 << 18,
        local_words: 1 << 16,
        control_words: 1 << 16,
        trail_words: 1 << 14,
        pdl_words: 1 << 11,
        goal_stack_words: 1 << 12,
        message_words: 1 << 8,
    }
}

fn options(workers: usize, parallel: bool, trace: bool) -> QueryOptions {
    QueryOptions {
        parallel,
        workers,
        trace,
        memory: experiment_memory(),
        max_steps: 2_000_000_000,
        scheduler: scheduler(),
        determinism: determinism(),
        ..QueryOptions::default()
    }
}

/// Run one benchmark and return the engine result.
pub fn run(bench: &Benchmark, workers: usize, parallel: bool, trace: bool) -> RunResult {
    let mut session = Session::new(&bench.program).expect("benchmark program parses");
    let result = session
        .run(&bench.query, &options(workers, parallel, trace))
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.id.name()));
    assert!(result.outcome.is_success(), "{} query failed", bench.id.name());
    result
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1 ("Characteristics of RAP-WAM Storage Objects").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    pub frame_type: String,
    pub area: String,
    pub in_wam: bool,
    pub locked: bool,
    pub locality: String,
}

/// Table 1 is a static property of the architecture: it is generated from
/// the same [`ObjectKind`] metadata the engine uses to tag every reference,
/// so the table and the trace can never disagree.
pub fn table1() -> Vec<Table1Row> {
    ObjectKind::ALL
        .iter()
        .map(|o| Table1Row {
            frame_type: o.name().to_string(),
            area: o.area().name().to_string(),
            in_wam: o.in_wam(),
            locked: o.locked(),
            locality: format!("{:?}", o.locality()),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One measured row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    pub benchmark: String,
    pub instructions: u64,
    pub refs_rapwam: u64,
    pub refs_wam: u64,
    pub goals_in_parallel: u64,
    pub refs_per_instruction: f64,
    /// RAP-WAM-over-WAM reference overhead (refs_rapwam / refs_wam - 1).
    pub overhead: f64,
}

/// The full Table 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    pub workers: usize,
    pub rows: Vec<Table2Row>,
}

/// Reproduce Table 2: per-benchmark statistics on `workers` PEs.
pub fn table2(scale: ExperimentScale, workers: usize) -> Table2 {
    let rows = BenchmarkId::ALL
        .iter()
        .map(|&id| {
            let bench = benchmark(id, scale.to_benchmark_scale());
            let par = run(&bench, workers, true, false);
            let seq = run(&bench, 1, false, false);
            Table2Row {
                benchmark: id.name().to_string(),
                instructions: par.stats.instructions,
                refs_rapwam: par.stats.data_refs,
                refs_wam: seq.stats.data_refs,
                goals_in_parallel: par.stats.goals_actually_parallel,
                refs_per_instruction: par.stats.refs_per_instruction(),
                overhead: par.stats.data_refs as f64 / seq.stats.data_refs as f64 - 1.0,
            }
        })
        .collect();
    Table2 { workers, rows }
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// One point of Figure 2 (deriv on N PEs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Point {
    pub pes: usize,
    /// Total RAP-WAM references as a percentage of the sequential WAM
    /// references ("work" in the paper's Figure 2).
    pub work_pct_of_wam: f64,
    /// Speed-up over the sequential WAM (elapsed-cycle ratio).
    pub speedup: f64,
    /// Fraction of worker cycles spent busy.
    pub utilisation: f64,
}

/// The full Figure 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2 {
    pub benchmark: String,
    pub wam_refs: u64,
    pub wam_cycles: u64,
    pub points: Vec<Figure2Point>,
}

/// Reproduce Figure 2: work and speed-up of `deriv` for a range of PE counts.
pub fn figure2(scale: ExperimentScale, pe_counts: &[usize]) -> Figure2 {
    let bench = benchmark(BenchmarkId::Deriv, scale.to_benchmark_scale());
    let seq = run(&bench, 1, false, false);
    let wam_refs = seq.stats.data_refs;
    let wam_cycles = seq.stats.elapsed_cycles;
    let points = pe_counts
        .iter()
        .map(|&pes| {
            let par = run(&bench, pes, true, false);
            Figure2Point {
                pes,
                work_pct_of_wam: 100.0 * par.stats.data_refs as f64 / wam_refs as f64,
                speedup: wam_cycles as f64 / par.stats.elapsed_cycles as f64,
                utilisation: par.stats.utilisation(),
            }
        })
        .collect();
    Figure2 { benchmark: "deriv".to_string(), wam_refs, wam_cycles, points }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Traffic-ratio fit of one small benchmark against the large-benchmark
/// reference constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Entry {
    pub benchmark: String,
    pub traffic_ratio: f64,
    /// `(tr - E_tr) / sigma_tr`
    pub normalised_deviation: f64,
}

/// One cache size of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    pub cache_words: u32,
    pub large_bench_mean: f64,
    pub large_bench_sigma: f64,
    pub entries: Vec<Table3Entry>,
    pub mean_deviation: f64,
}

/// Reproduce Table 3: sequential (WAM) traffic ratios of deriv/tak/qsort at
/// 512- and 1024-word caches, normalised against the published large-
/// benchmark statistics.
pub fn table3(scale: ExperimentScale) -> Vec<Table3Row> {
    let ids = [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort];
    let traces: Vec<(BenchmarkId, Vec<MemRef>)> = ids
        .iter()
        .map(|&id| {
            let bench = benchmark(id, scale.to_benchmark_scale());
            let result = run(&bench, 1, false, true);
            (id, result.trace.expect("trace requested"))
        })
        .collect();
    paper::TABLE3_LARGE
        .iter()
        .map(|large| {
            let entries: Vec<Table3Entry> = traces
                .iter()
                .map(|(id, trace)| {
                    let config = SimConfig {
                        cache: CacheConfig {
                            size_words: large.cache_words,
                            line_words: 4,
                            write_allocate: true,
                        },
                        protocol: Protocol::WriteInBroadcast,
                        num_pes: 1,
                    };
                    let tr = simulate(&config, trace).traffic_ratio();
                    Table3Entry {
                        benchmark: id.name().to_string(),
                        traffic_ratio: tr,
                        normalised_deviation: (tr - large.mean) / large.sigma,
                    }
                })
                .collect();
            let mean_deviation =
                entries.iter().map(|e| e.normalised_deviation).sum::<f64>() / entries.len() as f64;
            Table3Row {
                cache_words: large.cache_words,
                large_bench_mean: large.mean,
                large_bench_sigma: large.sigma,
                entries,
                mean_deviation,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// One curve of Figure 4: a protocol at a given PE count, traffic ratio as a
/// function of total cache size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Series {
    pub protocol: String,
    pub pes: usize,
    /// `(cache size in words, mean traffic ratio over the benchmarks)`
    pub points: Vec<(u32, f64)>,
}

/// The full Figure 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    pub benchmarks: Vec<String>,
    pub cache_sizes: Vec<u32>,
    pub series: Vec<Figure4Series>,
}

/// Reproduce Figure 4: mean traffic ratio of each coherency scheme as a
/// function of cache size, for 1/2/4/8 PEs, averaged over the benchmarks.
///
/// Trace generation (the expensive part) happens once per (benchmark, PE
/// count); the cache simulations for all sizes and protocols then fan out
/// over host threads.
pub fn figure4(
    scale: ExperimentScale,
    protocols: &[Protocol],
    pe_counts: &[usize],
    cache_sizes: &[u32],
) -> Figure4 {
    let benches: Vec<Benchmark> =
        BenchmarkId::ALL.iter().map(|&id| benchmark(id, scale.to_benchmark_scale())).collect();

    // (pe_count, benchmark) -> trace
    let mut traces: HashMap<(usize, BenchmarkId), Vec<MemRef>> = HashMap::new();
    for &pes in pe_counts {
        for bench in &benches {
            let result = run(bench, pes, true, true);
            traces.insert((pes, bench.id), result.trace.expect("trace requested"));
        }
    }

    let mut series = Vec::new();
    for &protocol in protocols {
        for &pes in pe_counts {
            let configs: Vec<SimConfig> = cache_sizes
                .iter()
                .map(|&size| SimConfig {
                    cache: CacheConfig::paper_policy(size, protocol),
                    protocol,
                    num_pes: pes,
                })
                .collect();
            // For each benchmark, sweep all cache sizes in parallel, then
            // average per size across the benchmarks.
            let mut sums = vec![0.0f64; cache_sizes.len()];
            for bench in &benches {
                let trace = &traces[&(pes, bench.id)];
                let results = run_sweep(trace, &configs);
                for (i, r) in results.iter().enumerate() {
                    sums[i] += r.traffic_ratio();
                }
            }
            let points = cache_sizes
                .iter()
                .zip(&sums)
                .map(|(&size, &sum)| (size, sum / benches.len() as f64))
                .collect();
            series.push(Figure4Series { protocol: protocol.name().to_string(), pes, points });
        }
    }
    Figure4 {
        benchmarks: benches.iter().map(|b| b.id.name().to_string()).collect(),
        cache_sizes: cache_sizes.to_vec(),
        series,
    }
}

// ---------------------------------------------------------------------------
// §3.3 back-of-the-envelope (mlips)
// ---------------------------------------------------------------------------

/// The measured inputs and model outputs of the paper's 2-MLIPS argument.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlips {
    /// Measured references per instruction (paper assumes 3).
    pub refs_per_instruction: f64,
    /// Measured instructions per inference (paper assumes 15 for large programs).
    pub instructions_per_inference: f64,
    /// Traffic ratio of 8 PEs with 128-word broadcast caches (paper: < 0.3).
    pub traffic_ratio_8pe_128w: f64,
    /// Raw bandwidth demand of 2 MLIPS without caches (MB/s; paper: 360).
    pub demand_mb_per_s: f64,
    /// Bus bandwidth needed after the caches capture their share (MB/s;
    /// paper: 108).
    pub bus_demand_mb_per_s: f64,
    /// Queueing-model evaluation for a range of PE counts.
    pub model: Vec<BusModelResult>,
}

/// Reproduce the back-of-the-envelope calculation of Section 3.3.
pub fn mlips(scale: ExperimentScale) -> Mlips {
    // Measure refs/instruction and instructions/inference on the benchmark set.
    let mut refs = 0u64;
    let mut instrs = 0u64;
    let mut inferences = 0u64;
    for &id in &BenchmarkId::ALL {
        let bench = benchmark(id, scale.to_benchmark_scale());
        let r = run(&bench, 8, true, false);
        refs += r.stats.data_refs;
        instrs += r.stats.instructions;
        inferences += r.stats.inferences;
    }
    let refs_per_instruction = refs as f64 / instrs as f64;
    let instructions_per_inference = instrs as f64 / inferences as f64;

    // Traffic ratio of the 8-PE / 128-word / broadcast configuration.
    let bench = benchmark(BenchmarkId::Deriv, scale.to_benchmark_scale());
    let trace = run(&bench, 8, true, true).trace.expect("trace requested");
    let config = SimConfig {
        cache: CacheConfig::paper_policy(128, Protocol::WriteInBroadcast),
        protocol: Protocol::WriteInBroadcast,
        num_pes: 8,
    };
    let traffic_ratio = simulate(&config, &trace).traffic_ratio();

    // The paper's arithmetic: 2 MLIPS x 15 instr/LI x 3 refs/instr x 4 bytes.
    let demand_mb_per_s = paper::claims::TARGET_MLIPS
        * paper::claims::INSTRUCTIONS_PER_INFERENCE
        * paper::claims::REFS_PER_INSTRUCTION
        * 4.0;
    let bus_demand_mb_per_s = demand_mb_per_s * traffic_ratio.min(0.3);

    // Evaluate the bus model with the paper's "current technology" numbers,
    // both at the traffic ratio we measured and at the paper's assumed 0.3
    // capture point (the paper's claim is about caches that capture 70%).
    let model = [2usize, 4, 8, 16, 24, 32]
        .iter()
        .map(|&pes| {
            BusModel::paper_technology().evaluate(
                pes,
                traffic_ratio.min(0.3),
                paper::claims::INSTRUCTIONS_PER_INFERENCE,
            )
        })
        .collect();

    Mlips {
        refs_per_instruction,
        instructions_per_inference,
        traffic_ratio_8pe_128w: traffic_ratio,
        demand_mb_per_s,
        bus_demand_mb_per_s,
        model,
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Traffic ratio of write-allocate versus no-write-allocate for one protocol
/// over the cache-size sweep (the paper's "no-write-allocate is best for
/// small caches" observation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocAblationPoint {
    pub cache_words: u32,
    pub write_allocate: f64,
    pub no_write_allocate: f64,
    pub miss_ratio_write_allocate: f64,
    pub miss_ratio_no_write_allocate: f64,
}

/// Run the allocate-policy ablation on the deriv trace (8 PEs, broadcast).
pub fn ablation_alloc(scale: ExperimentScale, cache_sizes: &[u32]) -> Vec<AllocAblationPoint> {
    let bench = benchmark(BenchmarkId::Deriv, scale.to_benchmark_scale());
    let trace = run(&bench, 8, true, true).trace.expect("trace requested");
    let mut configs = Vec::new();
    for &size in cache_sizes {
        for wa in [true, false] {
            configs.push(SimConfig {
                cache: CacheConfig { size_words: size, line_words: 4, write_allocate: wa },
                protocol: Protocol::WriteInBroadcast,
                num_pes: 8,
            });
        }
    }
    let results = run_sweep(&trace, &configs);
    cache_sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let wa = &results[2 * i];
            let nwa = &results[2 * i + 1];
            AllocAblationPoint {
                cache_words: size,
                write_allocate: wa.traffic_ratio(),
                no_write_allocate: nwa.traffic_ratio(),
                miss_ratio_write_allocate: wa.miss_ratio(),
                miss_ratio_no_write_allocate: nwa.miss_ratio(),
            }
        })
        .collect()
}

/// Evaluate the bus-contention model over PE counts for a measured traffic
/// ratio (the "shared memory efficiency can be high" discussion).
pub fn ablation_bus(scale: ExperimentScale, pe_counts: &[usize]) -> Vec<BusModelResult> {
    let bench = benchmark(BenchmarkId::Qsort, scale.to_benchmark_scale());
    let trace = run(&bench, 8, true, true).trace.expect("trace requested");
    let config = SimConfig {
        cache: CacheConfig::paper_policy(1024, Protocol::WriteInBroadcast),
        protocol: Protocol::WriteInBroadcast,
        num_pes: 8,
    };
    let tr = simulate(&config, &trace).traffic_ratio();
    pe_counts
        .iter()
        .map(|&pes| BusModel::default().evaluate(pes, tr, paper::claims::INSTRUCTIONS_PER_INFERENCE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_inventory() {
        let rows = table1();
        assert_eq!(rows.len(), 12);
        let heap = rows.iter().find(|r| r.frame_type == "Heap").unwrap();
        assert_eq!(heap.area, "heap");
        assert!(!heap.locked);
        assert_eq!(heap.locality, "Global");
        let counts = rows.iter().find(|r| r.frame_type == "Parcall F./Counts").unwrap();
        assert!(counts.locked);
        assert!(!counts.in_wam);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(ExperimentScale::parse("paper"), Some(ExperimentScale::Paper));
        assert_eq!(ExperimentScale::parse("bogus"), None);
    }
}
