//! The paper's published numbers, used for side-by-side comparison in the
//! experiment output (we reproduce *shapes and rankings*, not the absolute
//! values of a 1988 software stack).

/// One row of the paper's Table 2 ("Statistics for the Benchmarks Used",
/// 8 processors).
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    pub benchmark: &'static str,
    pub instructions: u64,
    pub refs_rapwam: u64,
    pub refs_wam: u64,
    pub goals_in_parallel: u64,
}

/// Table 2 as printed in the paper.
pub const TABLE2: [Table2Row; 4] = [
    Table2Row {
        benchmark: "deriv",
        instructions: 33_520,
        refs_rapwam: 85_477,
        refs_wam: 82_519,
        goals_in_parallel: 97,
    },
    Table2Row {
        benchmark: "tak",
        instructions: 75_254,
        refs_rapwam: 178_967,
        refs_wam: 169_599,
        goals_in_parallel: 263,
    },
    Table2Row {
        benchmark: "qsort",
        instructions: 237_884,
        refs_rapwam: 502_717,
        refs_wam: 499_526,
        goals_in_parallel: 97,
    },
    Table2Row {
        benchmark: "matrix",
        instructions: 95_349,
        refs_rapwam: 96_013,
        refs_wam: 95_357,
        goals_in_parallel: 24,
    },
];

/// Table 3 reference constants: mean and standard deviation of the traffic
/// ratio of Tick's *large* sequential Prolog benchmarks, for 512- and
/// 1024-word caches (4-word lines, write-allocate).
#[derive(Debug, Clone, Copy)]
pub struct LargeBenchTraffic {
    pub cache_words: u32,
    /// E_tr — mean traffic ratio of the large benchmarks.
    pub mean: f64,
    /// sigma_tr — standard deviation.
    pub sigma: f64,
}

/// The "large bench" column of Table 3.
pub const TABLE3_LARGE: [LargeBenchTraffic; 2] = [
    LargeBenchTraffic { cache_words: 512, mean: 0.164, sigma: 0.0626 },
    LargeBenchTraffic { cache_words: 1024, mean: 0.108, sigma: 0.0569 },
];

/// Normalised deviations `(tr - E_tr) / sigma_tr` printed in Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    pub cache_words: u32,
    pub deriv: f64,
    pub tak: f64,
    pub qsort: f64,
    pub mean: f64,
}

/// Table 3 as printed in the paper ("Fit of Small Benchmarks to Large
/// Benchmarks").
pub const TABLE3: [Table3Row; 2] = [
    Table3Row { cache_words: 512, deriv: 1.1, tak: -1.9, qsort: 0.83, mean: 1.3 },
    Table3Row { cache_words: 1024, deriv: 2.0, tak: -1.1, qsort: 1.6, mean: 1.6 },
];

/// Headline qualitative claims checked by the experiment harness and the
/// integration tests.
pub mod claims {
    /// Figure 2: RAP-WAM overhead for deriv stays small even at 40 PEs
    /// (the paper reports on the order of 15%).
    pub const FIGURE2_MAX_OVERHEAD: f64 = 0.35;
    /// §3.3: eight PEs with >= 128-word broadcast caches leave less than 30%
    /// of the processor traffic on the bus.
    pub const BROADCAST_TRAFFIC_AT_128_WORDS_8PE: f64 = 0.30;
    /// Figure 4 ranking: broadcast <= hybrid <= write-through (traffic).
    pub const RANKING: [&str; 3] = ["broadcast", "hybrid", "write-thru"];
    /// §3.3: target application inference rate (million inferences/second).
    pub const TARGET_MLIPS: f64 = 2.0;
    /// Average WAM instructions per inference assumed by the paper.
    pub const INSTRUCTIONS_PER_INFERENCE: f64 = 15.0;
    /// Average references per instruction assumed by the paper.
    pub const REFS_PER_INSTRUCTION: f64 = 3.0;
}

/// The cache sizes (in words) swept in Figure 4.
pub const FIGURE4_CACHE_SIZES: [u32; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// The PE counts plotted in Figure 4.
pub const FIGURE4_PE_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_cover_all_benchmarks() {
        let names: Vec<_> = TABLE2.iter().map(|r| r.benchmark).collect();
        assert_eq!(names, vec!["deriv", "tak", "qsort", "matrix"]);
    }

    #[test]
    fn table3_constants_are_positive() {
        for l in TABLE3_LARGE {
            assert!(l.mean > 0.0 && l.sigma > 0.0);
        }
    }

    #[test]
    fn figure4_sweep_is_sorted() {
        assert!(FIGURE4_CACHE_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(FIGURE4_PE_COUNTS.windows(2).all(|w| w[0] < w[1]));
    }
}
