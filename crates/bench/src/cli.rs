//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary accepts, in addition to its own flags:
//!
//! * `--scale small|paper|large` — input scale (default `paper`),
//! * `--threads N` — run every engine execution on the Threaded scheduler
//!   (one OS thread per PE).  `N` overrides the worker count only in
//!   binaries with a single worker knob (`table2`); the figure-style
//!   binaries sweep their own fixed PE counts and use the flag purely as a
//!   backend selector,
//! * `--scheduler interleaved|threaded` — pick the execution backend
//!   explicitly (the `PWAM_SCHEDULER` environment variable is the fallback),
//! * `--determinism strict|relaxed` — pick the determinism mode (the
//!   `PWAM_DETERMINISM` environment variable is the fallback).  `relaxed`
//!   frees the Threaded backend from the scheduling token (true per-arena
//!   parallel execution) and implies `--scheduler threaded`.

use crate::experiments::{set_determinism, set_scheduler, ExperimentScale};
use rapwam::{DeterminismMode, SchedulerKind};

/// The value following `key` in `args`, if present.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

/// Parse `--scale` (default [`ExperimentScale::Paper`]).
pub fn scale_arg(args: &[String]) -> ExperimentScale {
    arg_value(args, "--scale").and_then(|s| ExperimentScale::parse(&s)).unwrap_or(ExperimentScale::Paper)
}

/// Handle `--threads N` and `--scheduler NAME`: selects the process-wide
/// execution backend for every engine run, and returns the worker-count
/// override requested by `--threads` (if any).  Callers whose experiment
/// has a configurable worker count should honour the returned override;
/// fixed-PE experiments ignore it by design.
///
/// Invalid values are usage errors (exit code 2), not silent fallbacks: a
/// typo must not let a run claim a backend it never used.
pub fn scheduler_args(args: &[String]) -> Option<usize> {
    let explicit = arg_value(args, "--scheduler").map(|name| match SchedulerKind::parse(&name) {
        Some(kind) => kind,
        None => usage_error(&format!("--scheduler {name} (expected interleaved or threaded)")),
    });
    let threads = arg_value(args, "--threads").map(|s| match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage_error(&format!("--threads {s} (expected a worker count >= 1)")),
    });
    let determinism = arg_value(args, "--determinism").map(|name| match DeterminismMode::parse(&name) {
        Some(mode) => mode,
        None => usage_error(&format!("--determinism {name} (expected strict or relaxed)")),
    });
    if threads.is_some() && explicit == Some(SchedulerKind::Interleaved) {
        usage_error("--threads together with --scheduler interleaved (pick one backend)");
    }
    if determinism == Some(DeterminismMode::Relaxed) && explicit == Some(SchedulerKind::Interleaved) {
        // Relaxed only changes the Threaded backend; accepting the combination
        // would let a run claim a mode that never took effect.
        usage_error("--determinism relaxed together with --scheduler interleaved (relaxed needs threads)");
    }
    if let Some(kind) = explicit {
        set_scheduler(kind);
    }
    if threads.is_some() {
        set_scheduler(SchedulerKind::Threaded);
    }
    if let Some(mode) = determinism {
        set_determinism(mode);
        if mode == DeterminismMode::Relaxed {
            set_scheduler(SchedulerKind::Threaded);
        }
    }
    threads
}

fn usage_error(what: &str) -> ! {
    eprintln!("invalid argument: {what}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_finds_pairs() {
        let a = args(&["bin", "--scale", "small", "--json"]);
        assert_eq!(arg_value(&a, "--scale").as_deref(), Some("small"));
        assert_eq!(arg_value(&a, "--workers"), None);
        assert_eq!(scale_arg(&a), ExperimentScale::Small);
    }

    #[test]
    fn threads_flag_parses() {
        let a = args(&["bin", "--threads", "4"]);
        // Only checks the parse here; the process-wide scheduler choice is
        // first-wins and other tests may have already made it.
        assert_eq!(arg_value(&a, "--threads").and_then(|s| s.parse::<usize>().ok()), Some(4));
    }

    #[test]
    fn determinism_flag_parses() {
        let a = args(&["bin", "--determinism", "relaxed"]);
        // Only checks the parse here (the process-wide choice is first-wins).
        assert_eq!(
            arg_value(&a, "--determinism").and_then(|s| DeterminismMode::parse(&s)),
            Some(DeterminismMode::Relaxed)
        );
        assert_eq!(DeterminismMode::parse("strict"), Some(DeterminismMode::Strict));
        assert_eq!(DeterminismMode::parse("loose"), None);
    }
}
