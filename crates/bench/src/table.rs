//! Minimal fixed-width text-table rendering for the experiment binaries.

/// A simple text table: header row plus data rows, rendered with columns
/// sized to their widest cell.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a data row (must have the same number of cells as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with two decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "12345"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines have the same width
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.123456), "0.123");
        assert_eq!(f2(1.0), "1.00");
    }
}
