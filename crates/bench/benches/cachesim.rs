//! Criterion benchmarks of the cache simulator: per-protocol simulation
//! throughput over a real trace, and the scaling of the parallel
//! configuration sweep with host threads.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion, Throughput};
use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_cachesim::sweep::run_sweep_with_threads;
use pwam_cachesim::{run_sweep, simulate, CacheConfig, Protocol, SimConfig};
use rapwam::session::{QueryOptions, Session};
use rapwam::MemRef;

fn qsort_trace() -> Vec<MemRef> {
    let bench = benchmark(BenchmarkId::Qsort, Scale::Small);
    let mut session = Session::new(&bench.program).unwrap();
    let result = session.run(&bench.query, &QueryOptions::parallel(4).with_trace()).unwrap();
    result.trace.unwrap()
}

fn bench_protocols(c: &mut Criterion) {
    let trace = qsort_trace();
    let mut group = c.benchmark_group("cachesim-protocols");
    group.sample_size(20);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for protocol in Protocol::ALL {
        let config = SimConfig {
            cache: CacheConfig { size_words: 1024, line_words: 4, write_allocate: true },
            protocol,
            num_pes: 4,
        };
        group.bench_function(CritId::new("simulate", protocol.name()), |b| {
            b.iter(|| simulate(&config, &trace).bus_words)
        });
    }
    group.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let trace = qsort_trace();
    let configs: Vec<SimConfig> = [64u32, 128, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .flat_map(|&size| {
            Protocol::ALL.iter().map(move |&protocol| SimConfig {
                cache: CacheConfig::paper_policy(size, protocol),
                protocol,
                num_pes: 4,
            })
        })
        .collect();
    let mut group = c.benchmark_group("cachesim-sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(CritId::new("threads", threads), |b| {
            b.iter(|| run_sweep_with_threads(&trace, &configs, threads).len())
        });
    }
    group.bench_function("default-threads", |b| b.iter(|| run_sweep(&trace, &configs).len()));
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_sweep_scaling);
criterion_main!(benches);
