//! Criterion benchmarks of the experiment harness itself: how long it takes
//! to regenerate each table/figure on small inputs.  (The full paper-scale
//! regeneration is done by the `table*`/`figure*` binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use pwam_bench::experiments::{figure2, figure4, mlips, table2, table3, ExperimentScale};
use pwam_cachesim::Protocol;

fn bench_figures(c: &mut Criterion) {
    let scale = ExperimentScale::Small;
    let mut group = c.benchmark_group("experiments-small");
    group.sample_size(10);

    group.bench_function("table2", |b| b.iter(|| table2(scale, 4).rows.len()));
    group.bench_function("table3", |b| b.iter(|| table3(scale).len()));
    group.bench_function("figure2", |b| b.iter(|| figure2(scale, &[1, 4]).points.len()));
    group.bench_function("figure4", |b| {
        b.iter(|| {
            figure4(
                scale,
                &[Protocol::WriteInBroadcast, Protocol::Hybrid, Protocol::WriteThrough],
                &[1, 4],
                &[256, 1024],
            )
            .series
            .len()
        })
    });
    group.bench_function("mlips", |b| b.iter(|| mlips(scale).model.len()));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
