//! Criterion benchmarks of the front-end and compiler: parsing and
//! compiling the benchmark programs (plus their generated queries).

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion};
use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_compiler::{compile_program_and_query, CompileOptions};
use pwam_front::parser::{parse_program, parse_query};
use pwam_front::SymbolTable;

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.sample_size(30);
    for id in [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort, BenchmarkId::Matrix] {
        let bench = benchmark(id, Scale::Small);
        group.bench_function(CritId::new("parse", id.name()), |b| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let p = parse_program(&bench.program, &mut syms).unwrap();
                p.clauses.len()
            })
        });
        group.bench_function(CritId::new("compile-parallel", id.name()), |b| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let p = parse_program(&bench.program, &mut syms).unwrap();
                let q = parse_query(&bench.query, &mut syms).unwrap();
                compile_program_and_query(&p, &q, &mut syms, CompileOptions::parallel()).unwrap().code_len()
            })
        });
        group.bench_function(CritId::new("compile-sequential", id.name()), |b| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                let p = parse_program(&bench.program, &mut syms).unwrap();
                let q = parse_query(&bench.query, &mut syms).unwrap();
                compile_program_and_query(&p, &q, &mut syms, CompileOptions::sequential()).unwrap().code_len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
