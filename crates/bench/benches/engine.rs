//! Criterion benchmarks of the abstract machine itself: sequential WAM
//! execution versus RAP-WAM execution at several PE counts, on the paper's
//! benchmarks (small inputs so a `cargo bench` run stays short).

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion};
use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use rapwam::session::{QueryOptions, Session};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    for id in [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Qsort, BenchmarkId::Matrix] {
        let bench = benchmark(id, Scale::Small);
        group.bench_function(CritId::new("wam", id.name()), |b| {
            b.iter(|| {
                let mut session = Session::new(&bench.program).unwrap();
                let r = session.run(&bench.query, &QueryOptions::sequential()).unwrap();
                assert!(r.outcome.is_success());
                r.stats.data_refs
            })
        });
        for workers in [1usize, 4, 8] {
            group.bench_function(CritId::new(format!("rapwam-{workers}pe"), id.name()), |b| {
                b.iter(|| {
                    let mut session = Session::new(&bench.program).unwrap();
                    let r = session.run(&bench.query, &QueryOptions::parallel(workers)).unwrap();
                    assert!(r.outcome.is_success());
                    r.stats.data_refs
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
