//! Clause code generation (WAM put/get/unify sequences, control, CGEs).
//!
//! Each clause is compiled into a straight-line instruction sequence with no
//! choice instructions of its own; clause selection (try/retry/trust chains
//! and switch dispatch) is generated per-predicate by [`crate::index`].
//!
//! The parallel path of a CGE with `k` branches compiles (with the
//! last-goal-inline optimisation, the default) to
//!
//! ```text
//!     check_ground  Yk, Lseq        % one per run-time condition
//!     check_indep   Yi, Yj, Lseq
//!     pcall_alloc   N               % Parcall Frame, N = k - 1 slots
//!     <put args of branch 2>        % into A1..Aa2
//!     pcall_goal    p2/a2, slot 0   % Goal Frame onto the Goal Stack
//!     ...                           % branches 3..k, slots 1..N-1
//!     <put args of branch 1>
//!     call          p1/a1           % leftmost branch inline, no Goal Frame
//!     pcall_wait                    % schedule / steal / wait
//!     jump          Lcont
//! Lseq:                             % sequential fallback
//!     <put args of branch 1>  call p1/a1
//!     ...
//! Lcont:
//! ```
//!
//! which is the instruction-level shape described for the RAP-WAM in the
//! paper: goal frames created from the argument registers, a Parcall Frame
//! carrying completion counts, a wait point that doubles as the local
//! scheduling loop — and the parent executing the first goal itself, so the
//! parallelism overhead concentrates on the goals other PEs might steal.
//! An inline branch failing before `pcall_wait` is made sound by the
//! engine's parcall cancellation (backward execution); compiling with
//! `inline_first_goal` off pushes every branch through the Goal-Frame path
//! instead.

use crate::classify::{analyze_clause, cge_inline_call, is_builtin_call, ClauseAnalysis};
use crate::error::{CompileError, CompileResult};
use crate::instr::{Builtin, CallTarget, CodeAddr, Instr, PredRef, Reg};
use pwam_front::clause::{Cge, CgeCondition, Clause, Goal};
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::HashSet;

/// Compilation options shared by the whole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Compile CGEs into parallel code (RAP-WAM).  When `false`, CGEs are
    /// compiled as plain sequential conjunctions (the WAM baseline).
    pub parallel: bool,
    /// Generate first-argument indexing (switch_on_term and friends).
    pub indexing: bool,
    /// Execute the leftmost CGE branch inline on the parent PE, without a
    /// Goal Frame (the paper's last-goal-inline optimisation: the
    /// parallelism overhead concentrates on goals that may actually run
    /// elsewhere).  Sound because the engine performs parcall cancellation
    /// when the inline branch fails before `pcall_wait`.  On by default;
    /// turn it off to force every branch through the Goal-Frame path.
    pub inline_first_goal: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::parallel()
    }
}

impl CompileOptions {
    /// Options for the sequential WAM baseline.
    pub fn sequential() -> Self {
        CompileOptions { parallel: false, indexing: true, inline_first_goal: true }
    }
    /// Options for the parallel RAP-WAM.
    pub fn parallel() -> Self {
        CompileOptions { parallel: true, indexing: true, inline_first_goal: true }
    }
    /// Disable the last-goal-inline optimisation (every CGE branch takes
    /// the Goal-Frame path; used by the differential suites to pin both
    /// compilation schemes against each other).
    pub fn without_inline_first_goal(mut self) -> Self {
        self.inline_first_goal = false;
        self
    }
}

/// A growing chunk of code with chunk-relative addresses.
#[derive(Debug, Default, Clone)]
pub struct ChunkBuilder {
    pub code: Vec<Instr>,
}

impl ChunkBuilder {
    pub fn new() -> Self {
        ChunkBuilder { code: Vec::new() }
    }

    /// Current position (address of the next instruction to be emitted).
    pub fn here(&self) -> CodeAddr {
        self.code.len() as CodeAddr
    }

    /// Append an instruction, returning its address.
    pub fn emit(&mut self, i: Instr) -> CodeAddr {
        let at = self.here();
        self.code.push(i);
        at
    }

    /// Patch a previously emitted instruction in place.
    pub fn patch(&mut self, at: CodeAddr, f: impl FnOnce(&mut Instr)) {
        f(&mut self.code[at as usize]);
    }
}

/// Per-clause code generation context.
struct ClauseCtx<'a> {
    analysis: ClauseAnalysis,
    syms: &'a SymbolTable,
    opts: CompileOptions,
    /// Variables that have had their first occurrence compiled.
    seen: HashSet<String>,
    /// Next never-used scratch X register (reset per goal).
    scratch: u16,
    /// Scratch registers that have been released and can be reused.  Deeply
    /// nested literal terms (e.g. a 1000-element list in a query) would
    /// otherwise exhaust the register file.
    free_scratch: Vec<u16>,
}

impl<'a> ClauseCtx<'a> {
    fn reg(&self, name: &str) -> CompileResult<Reg> {
        self.analysis.reg_of(name)
    }

    fn reset_scratch(&mut self) {
        self.scratch = self.analysis.base_scratch;
        self.free_scratch.clear();
    }

    fn alloc_scratch(&mut self) -> CompileResult<u16> {
        if let Some(r) = self.free_scratch.pop() {
            return Ok(r);
        }
        let r = self.scratch;
        self.scratch += 1;
        if r as usize >= crate::MAX_X_REGS {
            return Err(CompileError::new("ran out of scratch registers"));
        }
        Ok(r)
    }

    /// Return a scratch register to the pool once the value it holds has
    /// been consumed by an emitted instruction.
    fn free_scratch(&mut self, r: u16) {
        self.free_scratch.push(r);
    }
}

/// Information returned when compiling a query clause.
#[derive(Debug, Clone, Default)]
pub struct QueryInfo {
    /// Query variables and the `Y` slot each was assigned.
    pub vars: Vec<(String, u16)>,
    /// Size of the query environment.
    pub env_size: u16,
}

/// Compile a single clause into `chunk`.  When `is_query` is set, the clause
/// is the query pseudo-clause: every variable is permanent, last-call
/// optimisation is disabled and the code ends in `halt` rather than
/// `proceed`, so the answer substitution stays readable in the environment.
pub fn compile_clause(
    clause: &Clause,
    syms: &SymbolTable,
    opts: CompileOptions,
    is_query: bool,
    chunk: &mut ChunkBuilder,
) -> CompileResult<QueryInfo> {
    let analysis = analyze_clause(clause, syms, is_query)?;
    let mut ctx = ClauseCtx {
        scratch: analysis.base_scratch,
        analysis,
        syms,
        opts,
        seen: HashSet::new(),
        free_scratch: Vec::new(),
    };

    let env_needed = ctx.analysis.env_needed;
    if env_needed {
        chunk.emit(Instr::Allocate { n: ctx.analysis.env_size });
    }
    if let Some(ycut) = ctx.analysis.cut_y {
        chunk.emit(Instr::GetLevel { y: ycut });
    }

    // ----- head -----
    ctx.reset_scratch();
    if let Term::Struct(_, args) = &clause.head {
        compile_head_args(&mut ctx, args, chunk)?;
    }

    // ----- body -----
    let goals = &clause.body.goals;
    // Index of the final goal if it is an ordinary user call eligible for LCO.
    let lco_index = if is_query {
        None
    } else {
        match goals.last() {
            Some(Goal::Call(t)) if !is_builtin_call(t, syms) => Some(goals.len() - 1),
            _ => None,
        }
    };

    let mut tail_called = false;
    for (i, goal) in goals.iter().enumerate() {
        ctx.reset_scratch();
        match goal {
            Goal::Cut => {
                let y = ctx
                    .analysis
                    .cut_y
                    .ok_or_else(|| CompileError::new("internal error: cut without a reserved cut slot"))?;
                chunk.emit(Instr::CutTo { y });
            }
            Goal::Call(t) => {
                if is_builtin_call(t, syms) {
                    compile_builtin_goal(&mut ctx, t, chunk)?;
                } else {
                    let last = Some(i) == lco_index;
                    compile_user_call(&mut ctx, t, last, env_needed, chunk)?;
                    if last {
                        tail_called = true;
                    }
                }
            }
            Goal::Cge(cge) => compile_cge(&mut ctx, cge, chunk)?,
        }
    }

    // ----- clause termination -----
    if is_query {
        chunk.emit(Instr::CallBuiltin { b: Builtin::Halt });
    } else if !tail_called {
        if env_needed {
            chunk.emit(Instr::Deallocate);
        }
        chunk.emit(Instr::Proceed);
    }

    let mut qinfo = QueryInfo::default();
    if is_query {
        let mut vars: Vec<(String, u16)> = ctx.analysis.perm.iter().map(|(k, v)| (k.clone(), *v)).collect();
        vars.sort_by_key(|(_, y)| *y);
        qinfo.vars = vars;
        qinfo.env_size = ctx.analysis.env_size;
    }
    Ok(qinfo)
}

// ---------------------------------------------------------------------------
// Head compilation
// ---------------------------------------------------------------------------

fn compile_head_args(ctx: &mut ClauseCtx, args: &[Term], chunk: &mut ChunkBuilder) -> CompileResult<()> {
    let wk = ctx.syms.well_known();
    // Breadth-first queue of (register, nested structure) pairs.
    let mut queue: Vec<(u16, Term)> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        let a = (i + 1) as u16;
        match arg {
            Term::Var(v) => {
                let reg = ctx.reg(v)?;
                if ctx.seen.insert(v.clone()) {
                    chunk.emit(Instr::GetVariable { v: reg, a });
                } else {
                    chunk.emit(Instr::GetValue { v: reg, a });
                }
            }
            Term::Int(n) => {
                chunk.emit(Instr::GetInteger { i: *n, a });
            }
            Term::Atom(c) => {
                if *c == wk.nil {
                    chunk.emit(Instr::GetNil { a });
                } else {
                    chunk.emit(Instr::GetConstant { c: *c, a });
                }
            }
            Term::Struct(f, sub) => {
                if *f == wk.dot && sub.len() == 2 {
                    chunk.emit(Instr::GetList { a });
                } else {
                    chunk.emit(Instr::GetStructure { f: *f, n: sub.len() as u8, a });
                }
                compile_unify_args(ctx, sub, &mut queue, chunk)?;
            }
        }
    }
    // Process nested structures breadth-first.  A register is released as
    // soon as its structure has been matched, so deeply nested heads only
    // need a handful of live scratch registers.
    let mut qi = 0;
    while qi < queue.len() {
        let (reg, term) = queue[qi].clone();
        qi += 1;
        if let Term::Struct(f, sub) = &term {
            if *f == wk.dot && sub.len() == 2 {
                chunk.emit(Instr::GetList { a: reg });
            } else {
                chunk.emit(Instr::GetStructure { f: *f, n: sub.len() as u8, a: reg });
            }
            ctx.free_scratch(reg);
            compile_unify_args(ctx, sub, &mut queue, chunk)?;
        }
    }
    Ok(())
}

fn compile_unify_args(
    ctx: &mut ClauseCtx,
    args: &[Term],
    queue: &mut Vec<(u16, Term)>,
    chunk: &mut ChunkBuilder,
) -> CompileResult<()> {
    let wk = ctx.syms.well_known();
    for arg in args {
        match arg {
            Term::Var(v) => {
                let reg = ctx.reg(v)?;
                if ctx.seen.insert(v.clone()) {
                    chunk.emit(Instr::UnifyVariable { v: reg });
                } else {
                    // UnifyValue performs the local-value (globalisation)
                    // check in the engine, so it is safe for Y registers.
                    chunk.emit(Instr::UnifyValue { v: reg });
                }
            }
            Term::Int(n) => {
                chunk.emit(Instr::UnifyInteger { i: *n });
            }
            Term::Atom(c) => {
                if *c == wk.nil {
                    chunk.emit(Instr::UnifyNil);
                } else {
                    chunk.emit(Instr::UnifyConstant { c: *c });
                }
            }
            Term::Struct(_, _) => {
                let s = ctx.alloc_scratch()?;
                chunk.emit(Instr::UnifyVariable { v: Reg::X(s) });
                queue.push((s, arg.clone()));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Argument (put) compilation
// ---------------------------------------------------------------------------

fn compile_put_args(
    ctx: &mut ClauseCtx,
    args: &[Term],
    last_goal: bool,
    chunk: &mut ChunkBuilder,
) -> CompileResult<()> {
    for (i, arg) in args.iter().enumerate() {
        let a = (i + 1) as u16;
        compile_put_arg(ctx, arg, a, last_goal, chunk)?;
    }
    Ok(())
}

fn compile_put_arg(
    ctx: &mut ClauseCtx,
    term: &Term,
    a: u16,
    last_goal: bool,
    chunk: &mut ChunkBuilder,
) -> CompileResult<()> {
    let wk = ctx.syms.well_known();
    match term {
        Term::Var(v) => {
            let reg = ctx.reg(v)?;
            if ctx.seen.insert(v.clone()) {
                chunk.emit(Instr::PutVariable { v: reg, a });
            } else if last_goal {
                if let Reg::Y(y) = reg {
                    chunk.emit(Instr::PutUnsafeValue { y, a });
                } else {
                    chunk.emit(Instr::PutValue { v: reg, a });
                }
            } else {
                chunk.emit(Instr::PutValue { v: reg, a });
            }
        }
        Term::Int(n) => {
            chunk.emit(Instr::PutInteger { i: *n, a });
        }
        Term::Atom(c) => {
            if *c == wk.nil {
                chunk.emit(Instr::PutNil { a });
            } else {
                chunk.emit(Instr::PutConstant { c: *c, a });
            }
        }
        Term::Struct(_, _) => {
            build_structure(ctx, term, a, chunk)?;
        }
    }
    Ok(())
}

/// Build a (possibly nested) structure bottom-up into X register `target`.
///
/// Nested sub-structures are built first, each into a scratch register that
/// is allocated only once its own children are finished and released as soon
/// as the parent has consumed it, so even very deep literal terms (long
/// lists in queries) need only a few live registers.
fn build_structure(
    ctx: &mut ClauseCtx,
    term: &Term,
    target: u16,
    chunk: &mut ChunkBuilder,
) -> CompileResult<()> {
    let wk = ctx.syms.well_known();
    let (f, args) = match term {
        Term::Struct(f, args) => (*f, args),
        _ => return Err(CompileError::new("build_structure called on a non-structure")),
    };
    // First build nested structures into scratch registers (post-order).
    let mut child_regs: Vec<Option<u16>> = Vec::with_capacity(args.len());
    for arg in args {
        if matches!(arg, Term::Struct(_, _)) {
            let s = build_substructure(ctx, arg, chunk)?;
            child_regs.push(Some(s));
        } else {
            child_regs.push(None);
        }
    }
    // Now emit the structure itself.
    if f == wk.dot && args.len() == 2 {
        chunk.emit(Instr::PutList { a: target });
    } else {
        chunk.emit(Instr::PutStructure { f, n: args.len() as u8, a: target });
    }
    for (arg, child) in args.iter().zip(child_regs) {
        match arg {
            Term::Var(v) => {
                let reg = ctx.reg(v)?;
                if ctx.seen.insert(v.clone()) {
                    chunk.emit(Instr::UnifyVariable { v: reg });
                } else {
                    chunk.emit(Instr::UnifyValue { v: reg });
                }
            }
            Term::Int(n) => {
                chunk.emit(Instr::UnifyInteger { i: *n });
            }
            Term::Atom(c) => {
                if *c == wk.nil {
                    chunk.emit(Instr::UnifyNil);
                } else {
                    chunk.emit(Instr::UnifyConstant { c: *c });
                }
            }
            Term::Struct(_, _) => {
                let s = child.expect("child register allocated above");
                chunk.emit(Instr::UnifyValue { v: Reg::X(s) });
                ctx.free_scratch(s);
            }
        }
    }
    Ok(())
}

/// Build a nested structure into a freshly allocated scratch register and
/// return that register.  The register is allocated *after* the structure's
/// own children have been built (and their registers released), which keeps
/// the number of simultaneously live scratch registers proportional to the
/// nesting depth of left branches rather than the total term size.
fn build_substructure(ctx: &mut ClauseCtx, term: &Term, chunk: &mut ChunkBuilder) -> CompileResult<u16> {
    let wk = ctx.syms.well_known();
    let (f, args) = match term {
        Term::Struct(f, args) => (*f, args),
        _ => return Err(CompileError::new("build_substructure called on a non-structure")),
    };
    let mut child_regs: Vec<Option<u16>> = Vec::with_capacity(args.len());
    for arg in args {
        if matches!(arg, Term::Struct(_, _)) {
            child_regs.push(Some(build_substructure(ctx, arg, chunk)?));
        } else {
            child_regs.push(None);
        }
    }
    let target = ctx.alloc_scratch()?;
    if f == wk.dot && args.len() == 2 {
        chunk.emit(Instr::PutList { a: target });
    } else {
        chunk.emit(Instr::PutStructure { f, n: args.len() as u8, a: target });
    }
    for (arg, child) in args.iter().zip(child_regs) {
        match arg {
            Term::Var(v) => {
                let reg = ctx.reg(v)?;
                if ctx.seen.insert(v.clone()) {
                    chunk.emit(Instr::UnifyVariable { v: reg });
                } else {
                    chunk.emit(Instr::UnifyValue { v: reg });
                }
            }
            Term::Int(n) => {
                chunk.emit(Instr::UnifyInteger { i: *n });
            }
            Term::Atom(c) => {
                if *c == wk.nil {
                    chunk.emit(Instr::UnifyNil);
                } else {
                    chunk.emit(Instr::UnifyConstant { c: *c });
                }
            }
            Term::Struct(_, _) => {
                let s = child.expect("child register allocated above");
                chunk.emit(Instr::UnifyValue { v: Reg::X(s) });
                ctx.free_scratch(s);
            }
        }
    }
    Ok(target)
}

// ---------------------------------------------------------------------------
// Goals
// ---------------------------------------------------------------------------

fn compile_builtin_goal(ctx: &mut ClauseCtx, t: &Term, chunk: &mut ChunkBuilder) -> CompileResult<()> {
    let (f, n) = t.functor().expect("builtin goal has a functor");
    let b = Builtin::lookup(ctx.syms.name(f), n)
        .ok_or_else(|| CompileError::new("internal error: not a builtin"))?;
    if let Term::Struct(_, args) = t {
        compile_put_args(ctx, args, false, chunk)?;
    }
    chunk.emit(Instr::CallBuiltin { b });
    Ok(())
}

fn compile_user_call(
    ctx: &mut ClauseCtx,
    t: &Term,
    last: bool,
    env_needed: bool,
    chunk: &mut ChunkBuilder,
) -> CompileResult<()> {
    let (f, n) = t.functor().ok_or_else(|| CompileError::new(format!("goal {t:?} is not callable")))?;
    if n > u8::MAX as usize {
        return Err(CompileError::new("goal arity exceeds 255"));
    }
    if let Term::Struct(_, args) = t {
        compile_put_args(ctx, args, last, chunk)?;
    }
    let target = CallTarget::Unresolved(PredRef { name: f, arity: n as u8 });
    if last {
        if env_needed {
            chunk.emit(Instr::Deallocate);
        }
        chunk.emit(Instr::Execute { target, arity: n as u8 });
    } else {
        chunk.emit(Instr::Call { target, arity: n as u8 });
    }
    Ok(())
}

fn condition_reg(ctx: &ClauseCtx, term: &Term) -> CompileResult<Reg> {
    match term {
        Term::Var(v) => {
            if !ctx.seen.contains(v) {
                return Err(CompileError::new(format!(
                    "CGE condition mentions variable {v} before it is bound anywhere; \
                     such a check can never succeed"
                )));
            }
            ctx.reg(v)
        }
        other => {
            Err(CompileError::new(format!("CGE conditions must be applied to variables, found {other:?}")))
        }
    }
}

fn compile_cge(ctx: &mut ClauseCtx, cge: &Cge, chunk: &mut ChunkBuilder) -> CompileResult<()> {
    // After lifting, every branch is a single user-predicate call.
    let mut branch_calls: Vec<&Term> = Vec::with_capacity(cge.branches.len());
    for b in &cge.branches {
        match b.goals.as_slice() {
            [Goal::Call(t)] if !is_builtin_call(t, ctx.syms) => branch_calls.push(t),
            _ => {
                return Err(CompileError::new(
                    "internal error: CGE branch is not a single user call (lifting missing?)",
                ))
            }
        }
    }
    if branch_calls.len() > u8::MAX as usize {
        return Err(CompileError::new("CGE has more than 255 parallel branches"));
    }

    if !ctx.opts.parallel {
        // WAM baseline: plain sequential conjunction, no checks.
        for t in &branch_calls {
            compile_user_call(ctx, t, false, false, chunk)?;
        }
        return Ok(());
    }

    // ----- parallel path -----
    let mut check_fixups: Vec<CodeAddr> = Vec::new();
    for cond in &cge.conditions {
        match cond {
            CgeCondition::True => {}
            CgeCondition::Ground(t) => {
                let v = condition_reg(ctx, t)?;
                let at = chunk.emit(Instr::CheckGround { v, else_: 0 });
                check_fixups.push(at);
            }
            CgeCondition::Indep(a, b) => {
                let v1 = condition_reg(ctx, a)?;
                let v2 = condition_reg(ctx, b)?;
                let at = chunk.emit(Instr::CheckIndep { v1, v2, else_: 0 });
                check_fixups.push(at);
            }
        }
    }

    // With the last-goal-inline optimisation the parent schedules branches
    // 2..k as Goal Frames and executes the leftmost branch itself, inline,
    // before entering `pcall_wait` — no Goal Frame, no Marker, no message
    // for the goal that would otherwise just be picked straight back up.
    // If the inline branch fails before the wait, the engine's parcall
    // cancellation retracts the un-stolen siblings and drains the in-flight
    // ones through the completion protocol, so the failure is sound (this
    // is what PR 4 lacked when it disabled the optimisation).  With the
    // optimisation off, every branch goes onto the Goal Stack and the
    // parent re-acquires its own goals at the wait through the local path.
    let seen_before = ctx.seen.clone();
    let inline_call =
        if ctx.opts.inline_first_goal { cge_inline_call(&cge.branches, ctx.syms) } else { None };
    let scheduled = if inline_call.is_some() { &branch_calls[1..] } else { &branch_calls[..] };
    chunk.emit(Instr::PcallAlloc { n: scheduled.len() as u8 });
    for (k, t) in scheduled.iter().enumerate() {
        ctx.reset_scratch();
        let (f, n) = t.functor().expect("branch call has a functor");
        if let Term::Struct(_, args) = t {
            compile_put_args(ctx, args, false, chunk)?;
        }
        chunk.emit(Instr::PcallGoal {
            target: CallTarget::Unresolved(PredRef { name: f, arity: n as u8 }),
            arity: n as u8,
            slot: k as u8,
        });
    }
    if let Some(first) = inline_call {
        // The scheduled branches are compiled (and executed) before the
        // inline one, so a shared variable's first occurrence is created
        // before any sibling reads it.
        ctx.reset_scratch();
        compile_user_call(ctx, first, false, false, chunk)?;
    }
    chunk.emit(Instr::PcallWait);
    let seen_after_parallel = ctx.seen.clone();

    if check_fixups.is_empty() {
        // Unconditional CGE: no fallback path is needed.
        return Ok(());
    }

    let jump_at = chunk.emit(Instr::Jump { addr: 0 });
    let seq_label = chunk.here();
    for at in check_fixups {
        chunk.patch(at, |i| match i {
            Instr::CheckGround { else_, .. } | Instr::CheckIndep { else_, .. } => *else_ = seq_label,
            _ => unreachable!("patched instruction is not a check"),
        });
    }

    // Sequential fallback: restore the first-occurrence state so the code is
    // self-contained whichever path executes.
    ctx.seen = seen_before;
    for t in &branch_calls {
        ctx.reset_scratch();
        compile_user_call(ctx, t, false, false, chunk)?;
    }
    debug_assert_eq!(ctx.seen, seen_after_parallel, "both CGE paths must bind the same variables");
    ctx.seen = seen_after_parallel;

    let cont = chunk.here();
    chunk.patch(jump_at, |i| {
        if let Instr::Jump { addr } = i {
            *addr = cont;
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::parser::parse_program;

    fn compile_first(src: &str, opts: CompileOptions) -> (Vec<Instr>, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let mut lifter = crate::lift::Lifter::new();
        let p = lifter.lift_program(&p, &mut syms);
        let mut chunk = ChunkBuilder::new();
        compile_clause(&p.clauses[0], &syms, opts, false, &mut chunk).unwrap();
        (chunk.code, syms)
    }

    fn count_matching(code: &[Instr], f: impl Fn(&Instr) -> bool) -> usize {
        code.iter().filter(|i| f(i)).count()
    }

    #[test]
    fn fact_compiles_to_gets_and_proceed() {
        let (code, _) = compile_first("p(a, X, 42).", CompileOptions::default());
        assert!(matches!(code.last(), Some(Instr::Proceed)));
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetConstant { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetVariable { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetInteger { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Allocate { .. })), 0);
    }

    #[test]
    fn last_call_optimisation_emits_execute() {
        let (code, _) = compile_first("p(X) :- q(X), r(X).", CompileOptions::default());
        assert!(matches!(code.last(), Some(Instr::Execute { .. })));
        // deallocate must appear right before the execute
        let len = code.len();
        assert!(matches!(code[len - 2], Instr::Deallocate));
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 1);
    }

    #[test]
    fn single_goal_clause_has_no_environment() {
        let (code, _) = compile_first("p(X) :- q(X).", CompileOptions::default());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Allocate { .. })), 0);
        assert!(matches!(code.last(), Some(Instr::Execute { .. })));
    }

    #[test]
    fn nested_structures_in_head_use_scratch_registers() {
        let (code, _) = compile_first("p(f(g(X), Y)).", CompileOptions::default());
        // get_structure f/2, A1 ; unify_variable Xs ; unify_variable Y ;
        // get_structure g/1, Xs ; unify_variable X
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetStructure { .. })), 2);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::UnifyVariable { .. })), 3);
    }

    #[test]
    fn list_head_uses_get_list() {
        let (code, _) = compile_first("p([H|T]) :- q(H, T).", CompileOptions::default());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetList { .. })), 1);
    }

    #[test]
    fn structure_argument_is_built_bottom_up() {
        let (code, _) = compile_first("p(X) :- q(f(g(1), X)).", CompileOptions::default());
        // the inner g(1) must be built before the outer f/2
        let pos_inner =
            code.iter().position(|i| matches!(i, Instr::PutStructure { n: 1, .. })).expect("inner structure");
        let pos_outer =
            code.iter().position(|i| matches!(i, Instr::PutStructure { n: 2, .. })).expect("outer structure");
        assert!(pos_inner < pos_outer);
    }

    #[test]
    fn builtin_goal_compiles_inline() {
        let (code, _) = compile_first("p(X, Y) :- Y is X + 1.", CompileOptions::default());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::CallBuiltin { b: Builtin::Is })), 1);
        assert!(matches!(code.last(), Some(Instr::Proceed)));
    }

    #[test]
    fn cut_allocates_and_uses_level() {
        let (code, _) = compile_first("p(X) :- q(X), !, r(X).", CompileOptions::default());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::GetLevel { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::CutTo { .. })), 1);
    }

    #[test]
    fn parallel_cge_emits_pcall_sequence() {
        let (code, _) = compile_first(
            "f(X,Y,Z) :- (ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z)).",
            CompileOptions::parallel(),
        );
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::CheckGround { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::CheckIndep { .. })), 1);
        // Last-goal-inline: only the rightmost branch is scheduled as a
        // Goal Frame; the leftmost runs inline on the parent before the
        // wait.
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallAlloc { n: 1 })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallGoal { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallWait)), 1);
        // one inline call on the parallel path, two on the fallback
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 3);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Jump { .. })), 1);
        // the inline call sits immediately before pcall_wait
        let wait = code.iter().position(|i| matches!(i, Instr::PcallWait)).unwrap();
        assert!(matches!(code[wait - 1], Instr::Call { .. }));
    }

    #[test]
    fn disabling_inline_pushes_every_branch() {
        let (code, _) = compile_first(
            "f(X,Y,Z) :- (ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z)).",
            CompileOptions::parallel().without_inline_first_goal(),
        );
        // Every branch gets a Goal Frame; the parent re-acquires its own
        // goals at `pcall_wait` through the local path.
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallAlloc { n: 2 })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallGoal { .. })), 2);
        // no inline call on the parallel path; two calls on the fallback
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 2);
    }

    #[test]
    fn unconditional_cge_has_no_fallback() {
        let (code, _) = compile_first("f(X,Y) :- (g(X) & h(Y)).", CompileOptions::parallel());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallGoal { .. })), 1);
        // no sequential fallback; exactly the inline call on the parallel path
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Jump { .. })), 0);
    }

    #[test]
    fn three_branch_cge_schedules_two_goals() {
        let (code, _) = compile_first("f(X,Y,Z) :- (g(X) & h(Y) & k(Z)).", CompileOptions::parallel());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallAlloc { n: 2 })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallGoal { slot: 0, .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallGoal { slot: 1, .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 1);
    }

    #[test]
    fn sequential_mode_compiles_cge_as_calls() {
        let (code, _) =
            compile_first("f(X,Y,Z) :- (ground(Y) | g(X,Y) & h(Y,Z)).", CompileOptions::sequential());
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::PcallAlloc { .. })), 0);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::CheckGround { .. })), 0);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Call { .. })), 2);
    }

    #[test]
    fn query_compilation_reports_variables_and_halts() {
        let mut syms = SymbolTable::new();
        let p = parse_program("dummy.", &mut syms).unwrap();
        let _ = p;
        let q = pwam_front::parser::parse_query("append(X, Y, [1,2,3])", &mut syms).unwrap();
        let clause = Clause { head: Term::Atom(syms.intern("$query")), body: q };
        let mut chunk = ChunkBuilder::new();
        let info = compile_clause(&clause, &syms, CompileOptions::default(), true, &mut chunk).unwrap();
        assert_eq!(info.vars.len(), 2);
        assert!(matches!(chunk.code.last(), Some(Instr::CallBuiltin { b: Builtin::Halt })));
        // the final user call must NOT be an execute (no LCO for queries)
        assert_eq!(count_matching(&chunk.code, |i| matches!(i, Instr::Execute { .. })), 0);
    }

    #[test]
    fn unsafe_value_for_permanent_in_last_call() {
        // Y is first bound by a put in the body (not the head) and used in
        // the last call: the conservative rule emits put_unsafe_value.
        let (code, _) = compile_first("p(X) :- q(X, Y), r(Y).", CompileOptions::default());
        assert!(count_matching(&code, |i| matches!(i, Instr::PutUnsafeValue { .. })) >= 1);
    }

    #[test]
    fn condition_on_unseen_variable_is_an_error() {
        let mut syms = SymbolTable::new();
        let p = parse_program("f(X) :- (ground(Q) | a(X) & b(X)).", &mut syms).unwrap();
        let mut lifter = crate::lift::Lifter::new();
        let p = lifter.lift_program(&p, &mut syms);
        let mut chunk = ChunkBuilder::new();
        let r = compile_clause(&p.clauses[0], &syms, CompileOptions::parallel(), false, &mut chunk);
        assert!(r.is_err());
    }
}
