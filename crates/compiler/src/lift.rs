//! CGE branch lifting.
//!
//! The RAP-WAM dispatches each parallel branch of a CGE as a *single
//! predicate call* whose arguments are copied into a Goal Frame on the Goal
//! Stack.  Source-level CGE branches, however, may be arbitrary sequential
//! conjunctions, contain cuts, builtins or even nested CGEs.  This pass
//! normalises a program so that **every CGE branch is exactly one call to a
//! user-defined predicate**, by lifting every other branch shape into a fresh
//! auxiliary predicate `'$par_<n>'(SharedVars...)` whose body is the original
//! branch.
//!
//! The transformation is semantics-preserving: the auxiliary predicate's
//! arguments are exactly the variables the branch shares with the rest of the
//! clause, so bindings flow in and out the same way.

use pwam_front::clause::{Body, Cge, Clause, Goal, Program};
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::BTreeSet;

use crate::classify::is_builtin_call;

/// Lift CGE branches of a whole program (and optionally of a query body).
/// Returns the transformed program; auxiliary predicates are appended.
pub struct Lifter {
    counter: usize,
}

impl Default for Lifter {
    fn default() -> Self {
        Self::new()
    }
}

impl Lifter {
    pub fn new() -> Self {
        Lifter { counter: 0 }
    }

    /// Lift every clause of `program`, returning a new program.
    pub fn lift_program(&mut self, program: &Program, syms: &mut SymbolTable) -> Program {
        let mut out = Program::default();
        let mut aux: Vec<Clause> = Vec::new();
        for clause in &program.clauses {
            let body = self.lift_body(&clause.body, syms, &mut aux);
            out.push(Clause { head: clause.head.clone(), body }, syms);
        }
        for c in aux {
            out.push(c, syms);
        }
        out
    }

    /// Lift a stand-alone body (e.g. a query).  Auxiliary clauses produced by
    /// the lifting are appended to `extra`.
    pub fn lift_body_with_aux(
        &mut self,
        body: &Body,
        syms: &mut SymbolTable,
        extra: &mut Vec<Clause>,
    ) -> Body {
        self.lift_body(body, syms, extra)
    }

    fn lift_body(&mut self, body: &Body, syms: &mut SymbolTable, aux: &mut Vec<Clause>) -> Body {
        let goals = body
            .goals
            .iter()
            .map(|g| match g {
                Goal::Call(t) => Goal::Call(t.clone()),
                Goal::Cut => Goal::Cut,
                Goal::Cge(cge) => Goal::Cge(self.lift_cge(cge, syms, aux)),
            })
            .collect();
        Body { goals }
    }

    fn lift_cge(&mut self, cge: &Cge, syms: &mut SymbolTable, aux: &mut Vec<Clause>) -> Cge {
        let branches = cge
            .branches
            .iter()
            .map(|branch| {
                // First, recursively lift nested CGEs inside the branch.
                let branch = self.lift_body(branch, syms, aux);
                if branch_is_plain_call(&branch, syms) {
                    branch
                } else {
                    let call = self.lift_branch(&branch, syms, aux);
                    Body { goals: vec![Goal::Call(call)] }
                }
            })
            .collect();
        Cge { conditions: cge.conditions.clone(), branches }
    }

    fn lift_branch(&mut self, branch: &Body, syms: &mut SymbolTable, aux: &mut Vec<Clause>) -> Term {
        let vars: BTreeSet<String> = branch.variables();
        let name = format!("$par_{}", self.counter);
        self.counter += 1;
        let f = syms.intern(&name);
        let args: Vec<Term> = vars.iter().map(|v| Term::Var(v.clone())).collect();
        let head = if args.is_empty() { Term::Atom(f) } else { Term::Struct(f, args.clone()) };
        aux.push(Clause { head: head.clone(), body: branch.clone() });
        head
    }
}

/// True if the branch is a single call to a (presumably) user predicate —
/// i.e. exactly one `Call` goal that is not a builtin.
fn branch_is_plain_call(branch: &Body, syms: &SymbolTable) -> bool {
    if branch.goals.len() != 1 {
        return false;
    }
    match &branch.goals[0] {
        Goal::Call(t) => !is_builtin_call(t, syms) && t.functor().is_some(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::parser::parse_program;

    fn lift(src: &str) -> (Program, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let mut lifter = Lifter::new();
        let out = lifter.lift_program(&p, &mut syms);
        (out, syms)
    }

    fn cge_of(p: &Program, clause_idx: usize) -> &Cge {
        match &p.clauses[clause_idx].body.goals[0] {
            Goal::Cge(c) => c,
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn plain_call_branches_are_untouched() {
        let (p, _) = lift("f(X,Y) :- (g(X) & h(Y)).");
        assert_eq!(p.clauses.len(), 1);
        let cge = cge_of(&p, 0);
        assert_eq!(cge.branches.len(), 2);
    }

    #[test]
    fn conjunction_branch_is_lifted() {
        let (p, syms) = lift("f(X,Y) :- ((g(X), g2(X)) & h(Y)).");
        // one original clause + one auxiliary predicate
        assert_eq!(p.clauses.len(), 2);
        let cge = cge_of(&p, 0);
        let call = match &cge.branches[0].goals[0] {
            Goal::Call(t) => t,
            other => panic!("{other:?}"),
        };
        let (f, n) = call.functor().unwrap();
        assert!(syms.name(f).starts_with("$par_"));
        assert_eq!(n, 1); // only X is shared into the branch
                          // The auxiliary clause body has the two original goals.
        assert_eq!(p.clauses[1].body.goals.len(), 2);
    }

    #[test]
    fn builtin_branch_is_lifted() {
        let (p, syms) = lift("f(A,B,X,Y) :- (X is A+1 & Y is B+2).");
        assert_eq!(p.clauses.len(), 3);
        let cge = cge_of(&p, 0);
        for b in &cge.branches {
            let call = match &b.goals[0] {
                Goal::Call(t) => t,
                other => panic!("{other:?}"),
            };
            let (f, _) = call.functor().unwrap();
            assert!(syms.name(f).starts_with("$par_"));
        }
    }

    #[test]
    fn nested_cge_is_lifted_recursively() {
        let (p, _) = lift("f(X,Y,Z) :- (g(X) & (h(Y), (i(Z) & j(Z)))).");
        // The second branch is a conjunction containing a nested CGE: the
        // branch itself is lifted, and inside the lifted predicate the nested
        // CGE's branches are plain calls already.
        assert!(p.clauses.len() >= 2);
        // All CGE branches everywhere must now be single calls.
        for clause in &p.clauses {
            for goal in &clause.body.goals {
                if let Goal::Cge(cge) = goal {
                    for b in &cge.branches {
                        assert_eq!(b.goals.len(), 1);
                        assert!(matches!(b.goals[0], Goal::Call(_)));
                    }
                }
            }
        }
    }

    #[test]
    fn cut_branch_is_lifted() {
        let (p, _) = lift("f(X,Y) :- ((g(X), !) & h(Y)).");
        assert_eq!(p.clauses.len(), 2);
        // The lifted predicate contains the cut (now local to it).
        assert!(p.clauses[1].body.goals.iter().any(|g| matches!(g, Goal::Cut)));
    }

    #[test]
    fn lifted_names_are_unique() {
        let (p, syms) = lift("f :- ((a, b) & (c, d)).\ng :- ((e, e2) & (h, i)).");
        let mut names = BTreeSet::new();
        for clause in &p.clauses {
            if let Some((f, _)) = clause.head.functor() {
                let n = syms.name(f);
                if n.starts_with("$par_") {
                    assert!(names.insert(n.to_string()), "duplicate auxiliary name {n}");
                }
            }
        }
        assert_eq!(names.len(), 4);
    }
}
