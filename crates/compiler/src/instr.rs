//! The WAM / RAP-WAM instruction set.
//!
//! The sequential subset follows Warren's abstract machine (put/get/unify
//! instruction families, environment and choice-point control, clause
//! indexing).  The parallel extensions are the ones the ICPP'88 paper
//! describes: run-time independence checks (`check_ground`, `check_indep`),
//! Parcall-Frame allocation, Goal-Frame pushing onto the Goal Stack, and the
//! wait/scheduling point (`pcall_wait`).
//!
//! Code addresses inside a compiled predicate chunk are *chunk-relative*
//! until the loader relocates them (see [`Instr::relocate`] and
//! `crate::loader`).

use pwam_front::atoms::Atom;
use serde::{Deserialize, Serialize};

/// Absolute (after loading) or chunk-relative (before loading) code address.
pub type CodeAddr = u32;

/// A WAM register operand: argument/temporary (`X`) or permanent (`Y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reg {
    /// Argument / temporary register `Xn` (1-based, as in the WAM papers).
    X(u16),
    /// Permanent variable `Yn` in the current environment (1-based).
    Y(u16),
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::X(n) => write!(f, "X{n}"),
            Reg::Y(n) => write!(f, "Y{n}"),
        }
    }
}

/// Key for `switch_on_constant` dispatch tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstKey {
    Atom(Atom),
    Int(i64),
}

/// A reference to a predicate, resolved by the loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredRef {
    pub name: Atom,
    pub arity: u8,
}

/// The target of a `call`/`execute`/`pcall_goal`, after loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallTarget {
    /// Not yet resolved (compiler output, before loading).
    Unresolved(PredRef),
    /// Entry point of a user-defined predicate in the code area.
    Code(CodeAddr),
    /// An escape to a built-in predicate.
    Builtin(Builtin),
    /// A host predicate registered on the session: the index into the
    /// compiled program's host registry ([`crate::CompiledProgram::hosts`]).
    /// Executing it suspends the engine so the host can service the call.
    Host(u32),
}

/// Built-in (escape) predicates.  They operate on the argument registers
/// `A1..An` like ordinary calls but are executed inline by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Builtin {
    /// `true/0`
    True,
    /// `fail/0`
    Fail,
    /// `is/2` — arithmetic evaluation: unify A1 with eval(A2).
    Is,
    /// `=:=/2`
    ArithEq,
    /// `=\=/2`
    ArithNeq,
    /// `</2`
    Lt,
    /// `=</2`
    Le,
    /// `>/2`
    Gt,
    /// `>=/2`
    Ge,
    /// `=/2` — full unification.
    Unify,
    /// `==/2` — structural equality without binding.
    StructEq,
    /// `\==/2`
    StructNeq,
    /// `ground/1`
    Ground,
    /// `var/1`
    Var,
    /// `nonvar/1`
    NonVar,
    /// `integer/1`
    Integer,
    /// `atom/1`
    AtomP,
    /// `atomic/1`
    Atomic,
    /// `indep/2` — run-time independence check (also usable as a goal).
    Indep,
    /// `halt/0` — stop the query successfully (used by the query stub).
    Halt,
}

impl Builtin {
    /// Map a predicate name/arity onto a builtin, if it is one.
    pub fn lookup(name: &str, arity: usize) -> Option<Builtin> {
        Some(match (name, arity) {
            ("true", 0) => Builtin::True,
            ("fail", 0) | ("false", 0) => Builtin::Fail,
            ("is", 2) => Builtin::Is,
            ("=:=", 2) => Builtin::ArithEq,
            ("=\\=", 2) => Builtin::ArithNeq,
            ("<", 2) => Builtin::Lt,
            ("=<", 2) => Builtin::Le,
            (">", 2) => Builtin::Gt,
            (">=", 2) => Builtin::Ge,
            ("=", 2) => Builtin::Unify,
            ("==", 2) => Builtin::StructEq,
            ("\\==", 2) => Builtin::StructNeq,
            ("ground", 1) => Builtin::Ground,
            ("var", 1) => Builtin::Var,
            ("nonvar", 1) => Builtin::NonVar,
            ("integer", 1) => Builtin::Integer,
            ("atom", 1) => Builtin::AtomP,
            ("atomic", 1) => Builtin::Atomic,
            ("indep", 2) => Builtin::Indep,
            ("halt", 0) => Builtin::Halt,
            _ => return None,
        })
    }

    /// Number of argument registers the builtin consumes.
    pub fn arity(self) -> u8 {
        match self {
            Builtin::True | Builtin::Fail | Builtin::Halt => 0,
            Builtin::Ground
            | Builtin::Var
            | Builtin::NonVar
            | Builtin::Integer
            | Builtin::AtomP
            | Builtin::Atomic => 1,
            _ => 2,
        }
    }
}

/// A single abstract-machine instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    // ----- put instructions (build a goal argument in register A_i) -----
    PutVariable {
        v: Reg,
        a: u16,
    },
    PutValue {
        v: Reg,
        a: u16,
    },
    PutUnsafeValue {
        y: u16,
        a: u16,
    },
    PutConstant {
        c: Atom,
        a: u16,
    },
    PutInteger {
        i: i64,
        a: u16,
    },
    PutNil {
        a: u16,
    },
    PutStructure {
        f: Atom,
        n: u8,
        a: u16,
    },
    PutList {
        a: u16,
    },

    // ----- get instructions (head argument unification) -----
    GetVariable {
        v: Reg,
        a: u16,
    },
    GetValue {
        v: Reg,
        a: u16,
    },
    GetConstant {
        c: Atom,
        a: u16,
    },
    GetInteger {
        i: i64,
        a: u16,
    },
    GetNil {
        a: u16,
    },
    GetStructure {
        f: Atom,
        n: u8,
        a: u16,
    },
    GetList {
        a: u16,
    },

    // ----- unify instructions (structure arguments, read/write mode) -----
    UnifyVariable {
        v: Reg,
    },
    UnifyValue {
        v: Reg,
    },
    UnifyLocalValue {
        v: Reg,
    },
    UnifyConstant {
        c: Atom,
    },
    UnifyInteger {
        i: i64,
    },
    UnifyNil,
    UnifyVoid {
        n: u8,
    },

    // ----- control -----
    Allocate {
        n: u16,
    },
    Deallocate,
    Call {
        target: CallTarget,
        arity: u8,
    },
    Execute {
        target: CallTarget,
        arity: u8,
    },
    Proceed,

    // ----- choice points & indexing -----
    TryMeElse {
        else_: CodeAddr,
    },
    RetryMeElse {
        else_: CodeAddr,
    },
    TrustMe,
    Try {
        addr: CodeAddr,
    },
    Retry {
        addr: CodeAddr,
    },
    Trust {
        addr: CodeAddr,
    },
    SwitchOnTerm {
        var: CodeAddr,
        con: CodeAddr,
        lis: CodeAddr,
        stru: CodeAddr,
    },
    SwitchOnConstant {
        table: Vec<(ConstKey, CodeAddr)>,
        default: CodeAddr,
    },
    SwitchOnStructure {
        table: Vec<((Atom, u8), CodeAddr)>,
        default: CodeAddr,
    },

    // ----- cut -----
    NeckCut,
    GetLevel {
        y: u16,
    },
    CutTo {
        y: u16,
    },

    // ----- builtins -----
    CallBuiltin {
        b: Builtin,
    },

    // ----- RAP-WAM parallel extensions -----
    /// Run-time groundness check on the dereferenced value of `v`;
    /// jump to `else_` (the sequential fallback code) if it fails.
    CheckGround {
        v: Reg,
        else_: CodeAddr,
    },
    /// Run-time independence check between the values of `v1` and `v2`;
    /// jump to `else_` if they share an unbound variable.
    CheckIndep {
        v1: Reg,
        v2: Reg,
        else_: CodeAddr,
    },
    /// Allocate a Parcall Frame with `n` goal slots on the local stack.
    PcallAlloc {
        n: u8,
    },
    /// Push a Goal Frame for `target` (arity `arity`, parcall slot `slot`)
    /// onto the worker's Goal Stack; arguments are taken from `A1..Aarity`.
    PcallGoal {
        target: CallTarget,
        arity: u8,
        slot: u8,
    },
    /// Scheduling/wait point: execute or steal goals until every slot of the
    /// current Parcall Frame has completed, then fall through.
    PcallWait,
    /// Internal stub executed when a parallel goal's continuation returns:
    /// records completion in the Parcall Frame and re-enters the scheduler.
    GoalSuccess,

    // ----- misc -----
    /// Unconditional jump (used to skip fallback code blocks).
    Jump {
        addr: CodeAddr,
    },
    /// Explicit failure (backtrack).
    FailInstr,
    /// Successful end of the query.
    Halt,
    /// No operation (alignment / patched-out slots).
    NoOp,
}

impl Instr {
    /// Apply `f` to every chunk-relative code address operand.  Used by the
    /// loader to relocate a predicate chunk to its absolute base address.
    pub fn map_addrs(&mut self, f: &mut dyn FnMut(CodeAddr) -> CodeAddr) {
        match self {
            Instr::TryMeElse { else_ } | Instr::RetryMeElse { else_ } => *else_ = f(*else_),
            Instr::Try { addr } | Instr::Retry { addr } | Instr::Trust { addr } | Instr::Jump { addr } => {
                *addr = f(*addr)
            }
            Instr::SwitchOnTerm { var, con, lis, stru } => {
                *var = f(*var);
                *con = f(*con);
                *lis = f(*lis);
                *stru = f(*stru);
            }
            Instr::SwitchOnConstant { table, default } => {
                for (_, a) in table.iter_mut() {
                    *a = f(*a);
                }
                *default = f(*default);
            }
            Instr::SwitchOnStructure { table, default } => {
                for (_, a) in table.iter_mut() {
                    *a = f(*a);
                }
                *default = f(*default);
            }
            Instr::CheckGround { else_, .. } => *else_ = f(*else_),
            Instr::CheckIndep { else_, .. } => *else_ = f(*else_),
            _ => {}
        }
    }

    /// Relocate chunk-relative addresses by adding `base`.
    pub fn relocate(&mut self, base: CodeAddr) {
        self.map_addrs(&mut |a| {
            if a == FAIL_SENTINEL {
                a // the shared failure address is already absolute
            } else {
                a + base
            }
        });
    }

    /// Apply `f` to every unresolved predicate reference (call targets).
    pub fn map_targets(&mut self, f: &mut dyn FnMut(&CallTarget) -> CallTarget) {
        match self {
            Instr::Call { target, .. } | Instr::Execute { target, .. } | Instr::PcallGoal { target, .. } => {
                *target = f(target)
            }
            _ => {}
        }
    }

    /// True for instructions that terminate the straight-line flow of a
    /// clause (used by the disassembler to insert blank lines).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Proceed | Instr::Execute { .. } | Instr::Halt | Instr::FailInstr | Instr::Jump { .. }
        )
    }
}

/// Sentinel used as a "branch to failure" address before loading; the loader
/// replaces it with the address of a shared `FailInstr` stub.
pub const FAIL_SENTINEL: CodeAddr = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::lookup("is", 2), Some(Builtin::Is));
        assert_eq!(Builtin::lookup("=<", 2), Some(Builtin::Le));
        assert_eq!(Builtin::lookup("is", 3), None);
        assert_eq!(Builtin::lookup("frobnicate", 2), None);
        assert_eq!(Builtin::Is.arity(), 2);
        assert_eq!(Builtin::Ground.arity(), 1);
        assert_eq!(Builtin::True.arity(), 0);
    }

    #[test]
    fn relocation_adds_base_but_keeps_fail_sentinel() {
        let mut i = Instr::TryMeElse { else_: 10 };
        i.relocate(100);
        assert_eq!(i, Instr::TryMeElse { else_: 110 });

        let mut j = Instr::SwitchOnTerm { var: 0, con: 1, lis: FAIL_SENTINEL, stru: 3 };
        j.relocate(50);
        assert_eq!(j, Instr::SwitchOnTerm { var: 50, con: 51, lis: FAIL_SENTINEL, stru: 53 });
    }

    #[test]
    fn map_targets_visits_calls() {
        let pr = PredRef { name: Atom(3), arity: 2 };
        let mut i = Instr::Call { target: CallTarget::Unresolved(pr), arity: 2 };
        i.map_targets(&mut |_| CallTarget::Code(7));
        assert_eq!(i, Instr::Call { target: CallTarget::Code(7), arity: 2 });
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::X(3).to_string(), "X3");
        assert_eq!(Reg::Y(1).to_string(), "Y1");
    }
}
