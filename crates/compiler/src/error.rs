//! Compiler error type.

use std::fmt;

/// Result alias used throughout the compiler.
pub type CompileResult<T> = Result<T, CompileError>;

/// An error raised during clause compilation or program loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub message: String,
}

impl CompileError {
    pub fn new(message: impl Into<String>) -> Self {
        CompileError { message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(CompileError::new("boom").to_string(), "compile error: boom");
    }
}
