//! Clause analysis: chunk decomposition, permanent/temporary variable
//! classification and register assignment.
//!
//! The classification follows the standard WAM rules:
//!
//! * the head and the first call-like body goal form *chunk 0*; every later
//!   call-like goal starts a new chunk (inline builtins and cuts do not end a
//!   chunk);
//! * each branch of a CGE is its own chunk (its goals may execute on another
//!   PE, or — on the sequential fallback path — after an intervening call);
//! * a variable occurring in more than one chunk is **permanent** (lives in a
//!   `Yn` slot of the environment); all others are **temporary** (`Xn`).
//!
//! For query compilation every variable is forced permanent so that the
//! engine can read the answer substitution out of the query environment
//! after `halt`.

use crate::error::{CompileError, CompileResult};
use crate::instr::{Builtin, Reg};
use pwam_front::clause::{Body, Clause, Goal};
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of analysing one clause.
#[derive(Debug, Clone, Default)]
pub struct ClauseAnalysis {
    /// Permanent variables: name → 1-based `Y` slot.
    pub perm: HashMap<String, u16>,
    /// Temporary variables: name → 1-based `X` register.
    pub temp: HashMap<String, u16>,
    /// Whether the clause needs an environment.
    pub env_needed: bool,
    /// `Y` slot reserved for the cut barrier (`get_level`/`cut`), if any.
    pub cut_y: Option<u16>,
    /// Total number of `Y` slots (permanent variables + cut barrier).
    pub env_size: u16,
    /// Number of call-like goals (user calls + CGEs) in the body.
    pub call_like: usize,
    /// First X register available for structure-building scratch temporaries.
    pub base_scratch: u16,
    /// Highest argument arity appearing in the clause (head or any goal).
    pub max_arity: u16,
}

impl ClauseAnalysis {
    /// The register assigned to a clause variable.
    pub fn reg_of(&self, name: &str) -> CompileResult<Reg> {
        if let Some(&y) = self.perm.get(name) {
            Ok(Reg::Y(y))
        } else if let Some(&x) = self.temp.get(name) {
            Ok(Reg::X(x))
        } else {
            Err(CompileError::new(format!("internal error: variable {name} was not classified")))
        }
    }

    /// True if the variable is permanent.
    pub fn is_permanent(&self, name: &str) -> bool {
        self.perm.contains_key(name)
    }
}

/// True if a goal term is a call to a builtin predicate.
pub fn is_builtin_call(term: &Term, syms: &SymbolTable) -> bool {
    match term.functor() {
        Some((f, n)) => Builtin::lookup(syms.name(f), n).is_some(),
        None => false,
    }
}

/// The call term of a CGE's leftmost branch when that branch is eligible
/// for inline execution on the parent PE (the last-goal-inline
/// optimisation): exactly one non-builtin user call.
///
/// Today every CGE that reaches codegen satisfies this — the parser
/// requires at least two branches, lifting reduces each branch to a single
/// user call, and `compile_cge` rejects anything else before asking — so
/// for compilable programs this returns `Some`.  It is still the single
/// place that *defines* eligibility: if branch shapes are ever loosened
/// (e.g. builtin-only branches), codegen automatically keeps those CGEs on
/// the Goal-Frame-everywhere path instead of inlining something unsound.
pub fn cge_inline_call<'a>(branches: &'a [pwam_front::clause::Body], syms: &SymbolTable) -> Option<&'a Term> {
    match branches.first()?.goals.as_slice() {
        [Goal::Call(t)] if !is_builtin_call(t, syms) => Some(t),
        _ => None,
    }
}

fn collect_term_vars(
    term: &Term,
    chunk: usize,
    occ: &mut BTreeMap<String, BTreeSet<usize>>,
    order: &mut Vec<String>,
) {
    match term {
        Term::Var(v) => {
            if !occ.contains_key(v) {
                order.push(v.clone());
            }
            occ.entry(v.clone()).or_default().insert(chunk);
        }
        Term::Struct(_, args) => {
            for a in args {
                collect_term_vars(a, chunk, occ, order);
            }
        }
        _ => {}
    }
}

fn goal_arity(goal: &Goal) -> usize {
    match goal {
        Goal::Call(t) => t.functor().map(|(_, n)| n).unwrap_or(0),
        Goal::Cut => 0,
        Goal::Cge(cge) => cge.branches.iter().flat_map(|b| b.goals.iter()).map(goal_arity).max().unwrap_or(0),
    }
}

fn body_has_cut(body: &Body) -> bool {
    body.goals.iter().any(|g| match g {
        Goal::Cut => true,
        Goal::Cge(c) => c.branches.iter().any(body_has_cut),
        Goal::Call(_) => false,
    })
}

fn body_has_cge(body: &Body) -> bool {
    body.goals.iter().any(|g| matches!(g, Goal::Cge(_)))
}

/// Analyse a clause.  `force_permanent` is used for query compilation.
pub fn analyze_clause(
    clause: &Clause,
    syms: &SymbolTable,
    force_permanent: bool,
) -> CompileResult<ClauseAnalysis> {
    // Occurrence map: variable -> set of chunk ids, plus first-occurrence order.
    let mut occ: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut chunk = 0usize;

    collect_term_vars(&clause.head, chunk, &mut occ, &mut order);

    let mut call_like = 0usize;
    for goal in &clause.body.goals {
        match goal {
            Goal::Cut => {}
            Goal::Call(t) => {
                collect_term_vars(t, chunk, &mut occ, &mut order);
                if !is_builtin_call(t, syms) {
                    call_like += 1;
                    chunk += 1;
                }
            }
            Goal::Cge(cge) => {
                call_like += 1;
                // Conditions belong to the chunk that precedes the CGE.
                for cond in &cge.conditions {
                    match cond {
                        pwam_front::clause::CgeCondition::Ground(t) => {
                            collect_term_vars(t, chunk, &mut occ, &mut order)
                        }
                        pwam_front::clause::CgeCondition::Indep(a, b) => {
                            collect_term_vars(a, chunk, &mut occ, &mut order);
                            collect_term_vars(b, chunk, &mut occ, &mut order);
                        }
                        pwam_front::clause::CgeCondition::True => {}
                    }
                }
                // Each branch is its own chunk.
                for branch in &cge.branches {
                    chunk += 1;
                    for g in &branch.goals {
                        match g {
                            Goal::Call(t) => collect_term_vars(t, chunk, &mut occ, &mut order),
                            Goal::Cut => {}
                            Goal::Cge(_) => {
                                return Err(CompileError::new(
                                    "nested CGEs must be lifted before classification (internal error)",
                                ))
                            }
                        }
                    }
                }
                chunk += 1;
            }
        }
    }

    let mut analysis = ClauseAnalysis { call_like, ..ClauseAnalysis::default() };

    // Permanent = occurs in >= 2 chunks (or forced).
    let mut next_y = 1u16;
    for name in &order {
        let chunks = &occ[name];
        if force_permanent || chunks.len() >= 2 {
            analysis.perm.insert(name.clone(), next_y);
            next_y += 1;
        }
    }

    let has_cut = body_has_cut(&clause.body);
    let has_cge = body_has_cge(&clause.body);
    if has_cut {
        analysis.cut_y = Some(next_y);
        next_y += 1;
    }
    analysis.env_size = next_y - 1;

    analysis.env_needed = analysis.env_size > 0 || call_like >= 2 || has_cge || force_permanent;

    // Maximum arity of the head and of every goal (for the temp register base).
    let head_arity = clause.head.functor().map(|(_, n)| n).unwrap_or(0);
    let max_goal_arity = clause.body.goals.iter().map(goal_arity).max().unwrap_or(0);
    let max_arity = head_arity.max(max_goal_arity) as u16;
    analysis.max_arity = max_arity;

    // Temporary variables: everything not permanent, numbered above max_arity.
    let mut next_x = max_arity + 1;
    for name in &order {
        if !analysis.perm.contains_key(name) {
            analysis.temp.insert(name.clone(), next_x);
            next_x += 1;
        }
    }
    analysis.base_scratch = next_x;

    if analysis.base_scratch as usize + 64 > crate::MAX_X_REGS {
        return Err(CompileError::new(format!(
            "clause for {:?} needs too many registers ({})",
            clause.head.functor(),
            analysis.base_scratch
        )));
    }

    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::parser::parse_program;

    fn analyze(src: &str) -> (ClauseAnalysis, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let a = analyze_clause(&p.clauses[0], &syms, false).unwrap();
        (a, syms)
    }

    #[test]
    fn fact_needs_no_environment() {
        let (a, _) = analyze("p(X, f(X), 3).");
        assert!(!a.env_needed);
        assert!(a.perm.is_empty());
        assert!(a.temp.contains_key("X"));
    }

    #[test]
    fn single_call_clause_needs_no_environment() {
        let (a, _) = analyze("p(X) :- q(X).");
        assert!(!a.env_needed);
        assert!(a.perm.is_empty(), "X lives in chunk 0 only: {:?}", a.perm);
    }

    #[test]
    fn variable_crossing_a_call_is_permanent() {
        let (a, _) = analyze("p(X, Y) :- q(X), r(Y).");
        // Y occurs in the head (chunk 0) and in r(Y) (chunk 1) -> permanent.
        assert!(a.perm.contains_key("Y"));
        // X occurs in head and q(X), both chunk 0 -> temporary.
        assert!(a.temp.contains_key("X"));
        assert!(a.env_needed);
    }

    #[test]
    fn builtin_does_not_end_a_chunk() {
        let (a, _) = analyze("p(X, Y) :- Y is X + 1, q(Y).");
        // Everything is in chunk 0 (is/2 is inline), so no permanents.
        assert!(a.perm.is_empty(), "{:?}", a.perm);
        assert!(!a.env_needed);
    }

    #[test]
    fn cge_branches_are_separate_chunks() {
        let (a, _) = analyze("f(X,Y,Z) :- (ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z)).");
        // Y occurs in both branches -> permanent; X and Z occur in one branch
        // each plus the head/conditions (chunk 0) -> also permanent.
        assert!(a.perm.contains_key("Y"));
        assert!(a.perm.contains_key("X"));
        assert!(a.perm.contains_key("Z"));
        assert!(a.env_needed);
        assert_eq!(a.call_like, 1);
    }

    #[test]
    fn cut_reserves_a_y_slot() {
        let (a, _) = analyze("p(X) :- q(X), !, r(X).");
        assert!(a.cut_y.is_some());
        assert_eq!(a.env_size as usize, a.perm.len() + 1);
    }

    #[test]
    fn forced_permanent_for_queries() {
        let mut syms = SymbolTable::new();
        let p = parse_program("q(X,Y) :- foo(X), bar(Y).", &mut syms).unwrap();
        let a = analyze_clause(&p.clauses[0], &syms, true).unwrap();
        assert_eq!(a.perm.len(), 2);
        assert!(a.temp.is_empty());
        assert!(a.env_needed);
    }

    #[test]
    fn temp_registers_start_above_max_arity() {
        let (a, _) = analyze("p(A,B,C) :- q(A,B,C,1,2).");
        for &x in a.temp.values() {
            assert!(x > 5, "temp register {x} must be above the max arity 5");
        }
        assert_eq!(a.max_arity, 5);
    }

    #[test]
    fn y_slots_are_dense_and_start_at_one() {
        let (a, _) = analyze("p(X,Y,Z) :- q(X), r(Y), s(Z).");
        let mut ys: Vec<u16> = a.perm.values().copied().collect();
        ys.sort_unstable();
        // X is only in chunk 0, Y crosses one call, Z crosses two.
        assert_eq!(ys, vec![1, 2]);
    }
}
