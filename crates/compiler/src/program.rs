//! The loaded program representation handed to the abstract machine.

use crate::codegen::CompileOptions;
use crate::dense::DenseCode;
use crate::instr::{CodeAddr, Instr};
use pwam_front::atoms::Atom;
use std::collections::HashMap;

/// A fully compiled and loaded program plus one query.
///
/// All code lives in a single code area (`code`); predicate entry points are
/// absolute addresses into it.  The engine starts executing at
/// [`CompiledProgram::query_start`] and stops when it reaches the `halt`
/// builtin emitted at the end of the query.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The code area.
    pub code: Vec<Instr>,
    /// The same code pre-decoded into the executor's dense fixed-width
    /// stream (index `i` is instruction address `i`, as in `code`).
    pub dense: DenseCode,
    /// Entry points of user predicates.
    pub predicates: HashMap<(Atom, u8), CodeAddr>,
    /// Predicate entry points in definition order (for stable reporting).
    pub predicate_order: Vec<((Atom, u8), CodeAddr)>,
    /// Resolved predicate names in definition order, parallel to
    /// `predicate_order`: `(name, arity, entry)`.  Like [`Self::hosts`],
    /// names are materialised at compile time so downstream layers (the
    /// engine's per-predicate profile, the serving tier's metrics) can
    /// label code addresses without the symbol table.
    pub predicate_names: Vec<(String, u8, CodeAddr)>,
    /// Entry point of the compiled query.
    pub query_start: CodeAddr,
    /// Size of the query environment (number of `Y` slots).
    pub query_env_size: u16,
    /// Query variables: source name → `Y` slot (1-based).
    pub query_vars: Vec<(String, u16)>,
    /// Address of the shared failure stub.
    pub fail_addr: CodeAddr,
    /// Address of the parallel-goal success stub.
    pub goal_success_addr: CodeAddr,
    /// Host predicates the program was compiled against, in registry order:
    /// `CallTarget::Host(i)` / `DenseOp::CallHost`'s `c` operand index this
    /// table.  Resolved names (not atoms) so the serving layer can match
    /// them against its registry without the symbol table.
    pub hosts: Vec<(String, u8)>,
    /// Options the program was compiled with.
    pub options: CompileOptions,
}

impl CompiledProgram {
    /// Number of instructions in the code area.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Entry point of a predicate, if defined.
    pub fn entry(&self, name: Atom, arity: u8) -> Option<CodeAddr> {
        self.predicates.get(&(name, arity)).copied()
    }

    /// The predicate (if any) whose code region contains `addr`.  Entry
    /// points are sorted by address; the owner is the predicate with the
    /// greatest entry point `<= addr`.  Used for profiling/debug output.
    pub fn predicate_containing(&self, addr: CodeAddr) -> Option<(Atom, u8)> {
        let mut best: Option<((Atom, u8), CodeAddr)> = None;
        for (key, entry) in &self.predicate_order {
            if *entry <= addr {
                match best {
                    Some((_, e)) if e >= *entry => {}
                    _ => best = Some((*key, *entry)),
                }
            }
        }
        best.map(|(k, _)| k)
    }

    /// The resolved `name/arity` label of the predicate whose entry point
    /// is exactly `addr`, if any.  Call targets always name entry points,
    /// so this is the lookup the per-predicate profile uses.
    pub fn predicate_label_at(&self, addr: CodeAddr) -> Option<String> {
        self.predicate_names
            .iter()
            .find(|(_, _, entry)| *entry == addr)
            .map(|(name, arity, _)| format!("{name}/{arity}"))
    }
}
