//! # pwam-compiler — WAM / RAP-WAM compiler
//!
//! Compiles the source-level programs produced by `pwam-front` into code for
//! the RAP-WAM abstract machine implemented in the `rapwam` crate.
//!
//! The pipeline is:
//!
//! 1. **Lifting** ([`lift`]) — every CGE branch becomes a single call to a
//!    user predicate (auxiliary `'$par_n'` predicates are synthesised where
//!    needed).
//! 2. **Classification** ([`classify`]) — chunk decomposition, permanent /
//!    temporary variable classification, register assignment.
//! 3. **Code generation** ([`codegen`]) — put/get/unify sequences, last-call
//!    optimisation, cut, builtins, and the RAP-WAM `check_*` / `pcall_*`
//!    parallel instructions.
//! 4. **Indexing** ([`index`]) — per-predicate `switch_on_term`,
//!    `switch_on_constant`, `switch_on_structure` and try/retry/trust chains.
//! 5. **Loading** ([`loader`]) — single code area, resolved call targets.
//!
//! ## Example
//!
//! ```
//! use pwam_front::{parser, SymbolTable};
//! use pwam_compiler::{compile_program_and_query, CompileOptions};
//!
//! let mut syms = SymbolTable::new();
//! let program = parser::parse_program(
//!     "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).",
//!     &mut syms,
//! ).unwrap();
//! let query = parser::parse_query("app([1,2],[3],X)", &mut syms).unwrap();
//! let compiled = compile_program_and_query(&program, &query, &mut syms,
//!                                           CompileOptions::default()).unwrap();
//! assert!(compiled.code_len() > 0);
//! ```

pub mod classify;
pub mod codegen;
pub mod dense;
pub mod disasm;
pub mod error;
pub mod index;
pub mod instr;
pub mod lift;
pub mod loader;
pub mod program;

pub use codegen::{ChunkBuilder, CompileOptions, QueryInfo};
pub use dense::{decode_reg, encode_reg, DenseCode, DenseInstr, DenseOp};
pub use error::{CompileError, CompileResult};
pub use instr::{Builtin, CallTarget, CodeAddr, ConstKey, Instr, PredRef, Reg};
pub use loader::{compile_program_and_query, compile_program_and_query_with_hosts};
pub use program::CompiledProgram;

/// Maximum number of X registers a worker provides (arguments + temporaries
/// + structure-building scratch).
pub const MAX_X_REGS: usize = 256;
