//! Human-readable disassembly of compiled code, for debugging and for the
//! `examples/` binaries.

use crate::instr::{CallTarget, ConstKey, Instr};
use crate::program::CompiledProgram;
use pwam_front::SymbolTable;
use std::collections::HashMap;

fn target_str(t: &CallTarget, entries: &HashMap<u32, String>) -> String {
    match t {
        CallTarget::Code(a) => entries.get(a).cloned().unwrap_or_else(|| format!("@{a}")),
        CallTarget::Builtin(b) => format!("builtin {b:?}"),
        CallTarget::Host(h) => format!("host #{h}"),
        CallTarget::Unresolved(pr) => format!("unresolved {:?}/{}", pr.name, pr.arity),
    }
}

/// Disassemble a single instruction.
pub fn instr_to_string(i: &Instr, syms: &SymbolTable, entries: &HashMap<u32, String>) -> String {
    let atom = |a: &pwam_front::atoms::Atom| syms.name(*a).to_string();
    match i {
        Instr::PutVariable { v, a } => format!("put_variable {v}, A{a}"),
        Instr::PutValue { v, a } => format!("put_value {v}, A{a}"),
        Instr::PutUnsafeValue { y, a } => format!("put_unsafe_value Y{y}, A{a}"),
        Instr::PutConstant { c, a } => format!("put_constant {}, A{a}", atom(c)),
        Instr::PutInteger { i, a } => format!("put_integer {i}, A{a}"),
        Instr::PutNil { a } => format!("put_nil A{a}"),
        Instr::PutStructure { f, n, a } => format!("put_structure {}/{n}, A{a}", atom(f)),
        Instr::PutList { a } => format!("put_list A{a}"),
        Instr::GetVariable { v, a } => format!("get_variable {v}, A{a}"),
        Instr::GetValue { v, a } => format!("get_value {v}, A{a}"),
        Instr::GetConstant { c, a } => format!("get_constant {}, A{a}", atom(c)),
        Instr::GetInteger { i, a } => format!("get_integer {i}, A{a}"),
        Instr::GetNil { a } => format!("get_nil A{a}"),
        Instr::GetStructure { f, n, a } => format!("get_structure {}/{n}, A{a}", atom(f)),
        Instr::GetList { a } => format!("get_list A{a}"),
        Instr::UnifyVariable { v } => format!("unify_variable {v}"),
        Instr::UnifyValue { v } => format!("unify_value {v}"),
        Instr::UnifyLocalValue { v } => format!("unify_local_value {v}"),
        Instr::UnifyConstant { c } => format!("unify_constant {}", atom(c)),
        Instr::UnifyInteger { i } => format!("unify_integer {i}"),
        Instr::UnifyNil => "unify_nil".to_string(),
        Instr::UnifyVoid { n } => format!("unify_void {n}"),
        Instr::Allocate { n } => format!("allocate {n}"),
        Instr::Deallocate => "deallocate".to_string(),
        Instr::Call { target, arity } => format!("call {} ({arity} args)", target_str(target, entries)),
        Instr::Execute { target, arity } => format!("execute {} ({arity} args)", target_str(target, entries)),
        Instr::Proceed => "proceed".to_string(),
        Instr::TryMeElse { else_ } => format!("try_me_else @{else_}"),
        Instr::RetryMeElse { else_ } => format!("retry_me_else @{else_}"),
        Instr::TrustMe => "trust_me".to_string(),
        Instr::Try { addr } => format!("try @{addr}"),
        Instr::Retry { addr } => format!("retry @{addr}"),
        Instr::Trust { addr } => format!("trust @{addr}"),
        Instr::SwitchOnTerm { var, con, lis, stru } => {
            format!("switch_on_term var:@{var} con:@{con} lis:@{lis} str:@{stru}")
        }
        Instr::SwitchOnConstant { table, default } => {
            let entries: Vec<String> = table
                .iter()
                .map(|(k, a)| match k {
                    ConstKey::Atom(at) => format!("{}→@{a}", atom(at)),
                    ConstKey::Int(i) => format!("{i}→@{a}"),
                })
                .collect();
            format!("switch_on_constant [{}] default:@{default}", entries.join(", "))
        }
        Instr::SwitchOnStructure { table, default } => {
            let entries: Vec<String> =
                table.iter().map(|((f, n), a)| format!("{}/{n}→@{a}", atom(f))).collect();
            format!("switch_on_structure [{}] default:@{default}", entries.join(", "))
        }
        Instr::NeckCut => "neck_cut".to_string(),
        Instr::GetLevel { y } => format!("get_level Y{y}"),
        Instr::CutTo { y } => format!("cut Y{y}"),
        Instr::CallBuiltin { b } => format!("builtin {b:?}"),
        Instr::CheckGround { v, else_ } => format!("check_ground {v}, else @{else_}"),
        Instr::CheckIndep { v1, v2, else_ } => format!("check_indep {v1}, {v2}, else @{else_}"),
        Instr::PcallAlloc { n } => format!("pcall_alloc {n}"),
        Instr::PcallGoal { target, arity, slot } => {
            format!("pcall_goal {} ({arity} args, slot {slot})", target_str(target, entries))
        }
        Instr::PcallWait => "pcall_wait".to_string(),
        Instr::GoalSuccess => "goal_success".to_string(),
        Instr::Jump { addr } => format!("jump @{addr}"),
        Instr::FailInstr => "fail".to_string(),
        Instr::Halt => "halt".to_string(),
        Instr::NoOp => "noop".to_string(),
    }
}

/// Disassemble a complete program with predicate labels.
pub fn disassemble(program: &CompiledProgram, syms: &SymbolTable) -> String {
    let mut entries: HashMap<u32, String> = HashMap::new();
    for ((name, arity), addr) in &program.predicate_order {
        entries.insert(*addr, format!("{}/{}", syms.name(*name), arity));
    }
    entries.insert(program.query_start, "$query/0".to_string());

    let mut out = String::new();
    for (i, instr) in program.code.iter().enumerate() {
        if let Some(label) = entries.get(&(i as u32)) {
            out.push_str(&format!("\n{label}:\n"));
        }
        out.push_str(&format!("  {:5}  {}\n", i, instr_to_string(instr, syms, &entries)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CompileOptions;
    use crate::loader::compile_program_and_query;
    use pwam_front::parser::{parse_program, parse_query};

    #[test]
    fn disassembly_mentions_predicates_and_instructions() {
        let mut syms = SymbolTable::new();
        let p = parse_program("app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).", &mut syms).unwrap();
        let q = parse_query("app([1],[2],X)", &mut syms).unwrap();
        let cp = compile_program_and_query(&p, &q, &mut syms, CompileOptions::default()).unwrap();
        let text = disassemble(&cp, &syms);
        assert!(text.contains("app/3:"));
        assert!(text.contains("$query/0:"));
        assert!(text.contains("switch_on_term"));
        assert!(text.contains("get_list"));
        assert!(text.contains("execute"));
    }

    #[test]
    fn every_instruction_renders() {
        // Smoke-test the formatter over a program that uses most features.
        let mut syms = SymbolTable::new();
        let src = "f(X,Y,Z) :- (ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z)).\n\
                   g(X, X).\nh(Y, Y).\n\
                   count(0, done) :- !.\ncount(N, R) :- M is N - 1, count(M, R).";
        let p = parse_program(src, &mut syms).unwrap();
        let q = parse_query("f(1,2,A,B), count(3, R)", &mut syms).unwrap();
        // query f has arity 4 mismatch with program's f/3 — adjust query:
        let _ = q;
        let q = parse_query("f(1,2,B), count(3, R)", &mut syms).unwrap();
        let cp = compile_program_and_query(&p, &q, &mut syms, CompileOptions::parallel()).unwrap();
        let text = disassemble(&cp, &syms);
        for needle in ["pcall_alloc", "pcall_goal", "pcall_wait", "check_ground", "check_indep", "cut Y"] {
            assert!(text.contains(needle), "missing {needle} in disassembly:\n{text}");
        }
    }
}
