//! Linking / loading: lay out predicate chunks in a single code area,
//! resolve call targets and the shared failure stub.

use crate::codegen::{compile_clause, ChunkBuilder, CompileOptions};
use crate::dense::DenseCode;
use crate::error::{CompileError, CompileResult};
use crate::index::compile_predicate;
use crate::instr::{Builtin, CallTarget, CodeAddr, Instr, FAIL_SENTINEL};
use crate::lift::Lifter;
use crate::program::CompiledProgram;
use pwam_front::clause::{Body, Clause, Program};
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::HashMap;

/// Compile a program and a query into a loaded [`CompiledProgram`].
///
/// This is the main entry point of the crate: it lifts CGE branches, compiles
/// every predicate (with indexing), compiles the query pseudo-clause, and
/// resolves all inter-predicate references.
pub fn compile_program_and_query(
    program: &Program,
    query: &Body,
    syms: &mut SymbolTable,
    opts: CompileOptions,
) -> CompileResult<CompiledProgram> {
    compile_program_and_query_with_hosts(program, query, syms, opts, &[])
}

/// Like [`compile_program_and_query`], with a registry of *host predicates*:
/// `(name, arity)` pairs the embedding application services at run time.
/// Calls to a host predicate compile to `CallTarget::Host(i)` where `i`
/// indexes [`CompiledProgram::hosts`].  User-defined predicates shadow host
/// registrations; hosts shadow builtins.  A host predicate cannot appear as
/// a parallel (CGE) goal — its suspension would park the whole machine while
/// sibling goals still run.
pub fn compile_program_and_query_with_hosts(
    program: &Program,
    query: &Body,
    syms: &mut SymbolTable,
    opts: CompileOptions,
    hosts: &[(pwam_front::atoms::Atom, u8)],
) -> CompileResult<CompiledProgram> {
    // ----- CGE lifting -----
    let mut lifter = Lifter::new();
    let mut lifted = lifter.lift_program(program, syms);
    let mut query_aux: Vec<Clause> = Vec::new();
    let lifted_query = lifter.lift_body_with_aux(query, syms, &mut query_aux);
    for c in query_aux {
        lifted.push(c, syms);
    }

    // ----- code area with runtime stubs -----
    let mut code: Vec<Instr> = Vec::new();
    let fail_addr: CodeAddr = code.len() as CodeAddr;
    code.push(Instr::FailInstr);
    let goal_success_addr: CodeAddr = code.len() as CodeAddr;
    code.push(Instr::GoalSuccess);

    // ----- predicates -----
    let mut predicates: HashMap<(pwam_front::atoms::Atom, u8), CodeAddr> = HashMap::new();
    let mut predicate_order = Vec::new();
    let mut predicate_names = Vec::new();
    for &(name, arity) in &lifted.predicate_order {
        if arity > u8::MAX as usize {
            return Err(CompileError::new(format!(
                "predicate {}/{} exceeds the maximum supported arity",
                syms.name(name),
                arity
            )));
        }
        let clauses = lifted.clauses_for(name, arity);
        let chunk = compile_predicate(&clauses, syms, opts)?;
        let base = code.len() as CodeAddr;
        append_relocated(&mut code, chunk, base);
        predicates.insert((name, arity as u8), base);
        predicate_order.push(((name, arity as u8), base));
        predicate_names.push((syms.name(name).to_string(), arity as u8, base));
    }

    // ----- query -----
    let query_atom = syms.intern("$query");
    let query_clause = Clause { head: Term::Atom(query_atom), body: lifted_query };
    let mut qchunk = ChunkBuilder::new();
    let qinfo = compile_clause(&query_clause, syms, opts, true, &mut qchunk)?;
    let query_start = code.len() as CodeAddr;
    append_relocated(&mut code, qchunk, query_start);

    // ----- host registry -----
    // Deterministic order: as registered, first registration of a
    // `(name, arity)` pair wins.
    let mut host_index: HashMap<(pwam_front::atoms::Atom, u8), u32> = HashMap::new();
    let mut host_names: Vec<(String, u8)> = Vec::new();
    for &(name, arity) in hosts {
        host_index.entry((name, arity)).or_insert_with(|| {
            host_names.push((syms.name(name).to_string(), arity));
            (host_names.len() - 1) as u32
        });
    }

    // ----- resolution -----
    // Validate call targets first so we can produce a good error message.
    for instr in &code {
        if let Instr::Call { target, .. } | Instr::Execute { target, .. } | Instr::PcallGoal { target, .. } =
            instr
        {
            if let CallTarget::Unresolved(pr) = target {
                let defined = predicates.contains_key(&(pr.name, pr.arity));
                let host = host_index.contains_key(&(pr.name, pr.arity));
                let builtin = Builtin::lookup(syms.name(pr.name), pr.arity as usize).is_some();
                if !defined && !host && !builtin {
                    return Err(CompileError::new(format!(
                        "undefined predicate {}/{}",
                        syms.name(pr.name),
                        pr.arity
                    )));
                }
                if host && !defined && matches!(instr, Instr::PcallGoal { .. }) {
                    return Err(CompileError::new(format!(
                        "host predicate {}/{} cannot be a parallel goal",
                        syms.name(pr.name),
                        pr.arity
                    )));
                }
            }
        }
    }
    for instr in code.iter_mut() {
        instr.map_addrs(&mut |a| if a == FAIL_SENTINEL { fail_addr } else { a });
        instr.map_targets(&mut |t| match t {
            CallTarget::Unresolved(pr) => {
                if let Some(&addr) = predicates.get(&(pr.name, pr.arity)) {
                    CallTarget::Code(addr)
                } else if let Some(&h) = host_index.get(&(pr.name, pr.arity)) {
                    CallTarget::Host(h)
                } else {
                    let b = Builtin::lookup(syms.name(pr.name), pr.arity as usize).expect("validated above");
                    CallTarget::Builtin(b)
                }
            }
            other => *other,
        });
    }

    let dense = DenseCode::build(&code);
    Ok(CompiledProgram {
        code,
        dense,
        predicates,
        predicate_order,
        predicate_names,
        query_start,
        query_env_size: qinfo.env_size,
        query_vars: qinfo.vars,
        fail_addr,
        goal_success_addr,
        hosts: host_names,
        options: opts,
    })
}

fn append_relocated(code: &mut Vec<Instr>, chunk: ChunkBuilder, base: CodeAddr) {
    for mut instr in chunk.code {
        instr.relocate(base);
        code.push(instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::parser::{parse_program, parse_query};

    fn compile(src: &str, query: &str, opts: CompileOptions) -> (CompiledProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let q = parse_query(query, &mut syms).unwrap();
        let cp = compile_program_and_query(&p, &q, &mut syms, opts).unwrap();
        (cp, syms)
    }

    #[test]
    fn simple_program_loads() {
        let (cp, syms) = compile(
            "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).",
            "app([1,2],[3],X)",
            CompileOptions::default(),
        );
        let app = syms.lookup("app").unwrap();
        assert!(cp.entry(app, 3).is_some());
        assert_eq!(cp.query_vars.len(), 1);
        assert_eq!(cp.query_vars[0].0, "X");
        assert!(matches!(cp.code[cp.fail_addr as usize], Instr::FailInstr));
        assert!(matches!(cp.code[cp.goal_success_addr as usize], Instr::GoalSuccess));
    }

    #[test]
    fn every_call_target_is_resolved() {
        let (cp, _) =
            compile("p(X) :- q(X).\nq(X) :- X is 1 + 1.\nr :- p(_).", "r, p(Y)", CompileOptions::default());
        for i in &cp.code {
            if let Instr::Call { target, .. }
            | Instr::Execute { target, .. }
            | Instr::PcallGoal { target, .. } = i
            {
                assert!(!matches!(target, CallTarget::Unresolved(_)), "unresolved target: {i:?}");
            }
        }
    }

    #[test]
    fn undefined_predicate_is_reported() {
        let mut syms = SymbolTable::new();
        let p = parse_program("p(X) :- missing(X).", &mut syms).unwrap();
        let q = parse_query("p(1)", &mut syms).unwrap();
        let err = compile_program_and_query(&p, &q, &mut syms, CompileOptions::default()).unwrap_err();
        assert!(err.message.contains("missing/1"), "{}", err.message);
    }

    #[test]
    fn no_fail_sentinels_survive_loading() {
        let (cp, _) = compile("f(a).\nf(b).\ng([]).\ng([_|_]).", "f(X), g([])", CompileOptions::default());
        for i in &cp.code {
            let mut bad = false;
            let mut probe = i.clone();
            probe.map_addrs(&mut |a| {
                if a == FAIL_SENTINEL {
                    bad = true;
                }
                a
            });
            assert!(!bad, "instruction still holds FAIL_SENTINEL: {i:?}");
        }
    }

    #[test]
    fn parallel_program_with_cge_loads_and_resolves_pcall_targets() {
        let (cp, _) = compile(
            "f(X,Y,R1,R2) :- (ground(X), ground(Y) | g(X,R1) & h(Y,R2)).\n\
             g(X, X).\nh(Y, Y).",
            "f(1,2,A,B)",
            CompileOptions::parallel(),
        );
        let pcalls: Vec<_> = cp.code.iter().filter(|i| matches!(i, Instr::PcallGoal { .. })).collect();
        // The rightmost branch is scheduled as a Goal Frame; the leftmost
        // runs inline on the parent (last-goal-inline optimisation).
        assert_eq!(pcalls.len(), 1);
        for i in pcalls {
            if let Instr::PcallGoal { target, .. } = i {
                assert!(matches!(target, CallTarget::Code(_)));
            }
        }
    }

    #[test]
    fn query_variables_are_ordered_by_slot() {
        let (cp, _) = compile("t(1,2,3).", "t(A,B,C)", CompileOptions::default());
        let slots: Vec<u16> = cp.query_vars.iter().map(|(_, s)| *s).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
        assert_eq!(cp.query_vars.len(), 3);
    }

    #[test]
    fn predicate_containing_maps_addresses_back() {
        let (cp, syms) = compile("a(1).\nb(2).", "a(X), b(Y)", CompileOptions::default());
        let a = syms.lookup("a").unwrap();
        let b = syms.lookup("b").unwrap();
        let ea = cp.entry(a, 1).unwrap();
        let eb = cp.entry(b, 1).unwrap();
        assert_eq!(cp.predicate_containing(ea), Some((a, 1)));
        assert_eq!(cp.predicate_containing(eb), Some((b, 1)));
    }
}
