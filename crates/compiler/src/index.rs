//! Per-predicate clause selection: first-argument indexing and try/retry/trust
//! chains.
//!
//! The generated layout for a predicate with more than one clause is
//!
//! ```text
//! entry:  switch_on_term  Lvar, Lcon, Llis, Lstr
//! Lvar:   try   C1 ; retry C2 ; ... ; trust Cm       (all clauses)
//! Lcon:   switch_on_constant {k1 -> ..., ...} default Ldef
//! ...                                                  (value chains)
//! C1:     <clause 1 code>
//! C2:     <clause 2 code>
//! ```
//!
//! mirroring the WAM's two-level indexing scheme.  Choice points are only
//! created by the try/retry/trust drivers, never inside clause code.

use crate::codegen::{compile_clause, ChunkBuilder, CompileOptions};
use crate::error::{CompileError, CompileResult};
use crate::instr::{CodeAddr, ConstKey, Instr, FAIL_SENTINEL};
use pwam_front::atoms::Atom;
use pwam_front::clause::Clause;
use pwam_front::term::Term;
use pwam_front::SymbolTable;

/// Shape of a clause's first head argument, used to build dispatch tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FirstArg {
    Variable,
    Constant(ConstKey),
    List,
    Structure(Atom, u8),
    /// The predicate has arity 0 (no first argument to index on).
    None,
}

fn first_arg_kind(clause: &Clause, syms: &SymbolTable) -> FirstArg {
    let wk = syms.well_known();
    match &clause.head {
        Term::Atom(_) => FirstArg::None,
        Term::Struct(_, args) => match &args[0] {
            Term::Var(_) => FirstArg::Variable,
            Term::Int(i) => FirstArg::Constant(ConstKey::Int(*i)),
            Term::Atom(a) => FirstArg::Constant(ConstKey::Atom(*a)),
            Term::Struct(f, sub) if *f == wk.dot && sub.len() == 2 => FirstArg::List,
            Term::Struct(f, sub) => FirstArg::Structure(*f, sub.len() as u8),
        },
        _ => FirstArg::None,
    }
}

/// A planned dispatch target, resolved to a code address after layout.
#[derive(Debug, Clone, Copy)]
enum Target {
    Clause(usize),
    Block(usize),
    Fail,
}

#[derive(Debug, Clone)]
enum Block {
    SwitchTerm { var: Target, con: Target, lis: Target, stru: Target },
    SwitchConst { table: Vec<(ConstKey, Target)>, default: Target },
    SwitchStruct { table: Vec<((Atom, u8), Target)>, default: Target },
    Chain(Vec<usize>),
}

impl Block {
    fn len(&self) -> usize {
        match self {
            Block::Chain(c) => c.len(),
            _ => 1,
        }
    }
}

/// Compile a whole predicate (all its clauses) into one chunk whose entry
/// point is offset 0.
pub fn compile_predicate(
    clauses: &[&Clause],
    syms: &SymbolTable,
    opts: CompileOptions,
) -> CompileResult<ChunkBuilder> {
    if clauses.is_empty() {
        return Err(CompileError::new("cannot compile a predicate with no clauses"));
    }

    // Compile every clause into its own chunk first.
    let mut clause_chunks: Vec<ChunkBuilder> = Vec::with_capacity(clauses.len());
    for c in clauses {
        let mut chunk = ChunkBuilder::new();
        compile_clause(c, syms, opts, false, &mut chunk)?;
        clause_chunks.push(chunk);
    }

    if clauses.len() == 1 {
        return Ok(clause_chunks.pop().unwrap());
    }

    let kinds: Vec<FirstArg> = clauses.iter().map(|c| first_arg_kind(c, syms)).collect();
    let indexable = opts.indexing && !kinds.iter().any(|k| matches!(k, FirstArg::None));

    let mut blocks: Vec<Block> = Vec::new();

    if !indexable {
        // Simple try/retry/trust chain over all clauses.
        blocks.push(Block::Chain((0..clauses.len()).collect()));
    } else {
        // Block 0 is the switch_on_term; fill its targets below.
        blocks.push(Block::SwitchTerm {
            var: Target::Fail,
            con: Target::Fail,
            lis: Target::Fail,
            stru: Target::Fail,
        });

        let all: Vec<usize> = (0..clauses.len()).collect();
        let var_only: Vec<usize> =
            all.iter().copied().filter(|&i| matches!(kinds[i], FirstArg::Variable)).collect();

        let make_target = |cands: Vec<usize>, blocks: &mut Vec<Block>| -> Target {
            match cands.len() {
                0 => Target::Fail,
                1 => Target::Clause(cands[0]),
                _ => {
                    blocks.push(Block::Chain(cands));
                    Target::Block(blocks.len() - 1)
                }
            }
        };

        // var entry: all clauses in order.
        let var_target = make_target(all.clone(), &mut blocks);

        // constants
        let mut const_keys: Vec<ConstKey> = Vec::new();
        for k in &kinds {
            if let FirstArg::Constant(c) = k {
                if !const_keys.contains(c) {
                    const_keys.push(*c);
                }
            }
        }
        let con_target = if const_keys.is_empty() {
            make_target(var_only.clone(), &mut blocks)
        } else {
            let mut table = Vec::new();
            for key in const_keys {
                let cands: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| {
                        matches!(kinds[i], FirstArg::Variable) || kinds[i] == FirstArg::Constant(key)
                    })
                    .collect();
                table.push((key, make_target(cands, &mut blocks)));
            }
            let default = make_target(var_only.clone(), &mut blocks);
            blocks.push(Block::SwitchConst { table, default });
            Target::Block(blocks.len() - 1)
        };

        // lists
        let list_cands: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| matches!(kinds[i], FirstArg::Variable | FirstArg::List))
            .collect();
        let lis_target = make_target(list_cands, &mut blocks);

        // structures
        let mut struct_keys: Vec<(Atom, u8)> = Vec::new();
        for k in &kinds {
            if let FirstArg::Structure(f, n) = k {
                if !struct_keys.contains(&(*f, *n)) {
                    struct_keys.push((*f, *n));
                }
            }
        }
        let stru_target = if struct_keys.is_empty() {
            make_target(var_only.clone(), &mut blocks)
        } else {
            let mut table = Vec::new();
            for key in struct_keys {
                let cands: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| {
                        matches!(kinds[i], FirstArg::Variable)
                            || kinds[i] == FirstArg::Structure(key.0, key.1)
                    })
                    .collect();
                table.push((key, make_target(cands, &mut blocks)));
            }
            let default = make_target(var_only.clone(), &mut blocks);
            blocks.push(Block::SwitchStruct { table, default });
            Target::Block(blocks.len() - 1)
        };

        blocks[0] =
            Block::SwitchTerm { var: var_target, con: con_target, lis: lis_target, stru: stru_target };
    }

    // ----- layout -----
    let mut block_offsets = Vec::with_capacity(blocks.len());
    let mut off = 0usize;
    for b in &blocks {
        block_offsets.push(off as CodeAddr);
        off += b.len();
    }
    let mut clause_offsets = Vec::with_capacity(clause_chunks.len());
    for c in &clause_chunks {
        clause_offsets.push(off as CodeAddr);
        off += c.code.len();
    }

    let resolve = |t: Target| -> CodeAddr {
        match t {
            Target::Fail => FAIL_SENTINEL,
            Target::Clause(i) => clause_offsets[i],
            Target::Block(i) => block_offsets[i],
        }
    };

    // ----- emission -----
    let mut out = ChunkBuilder::new();
    for b in &blocks {
        match b {
            Block::SwitchTerm { var, con, lis, stru } => {
                out.emit(Instr::SwitchOnTerm {
                    var: resolve(*var),
                    con: resolve(*con),
                    lis: resolve(*lis),
                    stru: resolve(*stru),
                });
            }
            Block::SwitchConst { table, default } => {
                out.emit(Instr::SwitchOnConstant {
                    table: table.iter().map(|(k, t)| (*k, resolve(*t))).collect(),
                    default: resolve(*default),
                });
            }
            Block::SwitchStruct { table, default } => {
                out.emit(Instr::SwitchOnStructure {
                    table: table.iter().map(|(k, t)| (*k, resolve(*t))).collect(),
                    default: resolve(*default),
                });
            }
            Block::Chain(cands) => {
                let last = cands.len() - 1;
                for (j, &ci) in cands.iter().enumerate() {
                    let addr = clause_offsets[ci];
                    let instr = if j == 0 {
                        Instr::Try { addr }
                    } else if j == last {
                        Instr::Trust { addr }
                    } else {
                        Instr::Retry { addr }
                    };
                    out.emit(instr);
                }
            }
        }
    }
    for (chunk, &base) in clause_chunks.iter().zip(&clause_offsets) {
        for instr in &chunk.code {
            let mut i = instr.clone();
            i.relocate(base);
            out.emit(i);
        }
    }
    debug_assert_eq!(out.code.len(), off);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::parser::parse_program;

    fn compile_pred(src: &str, name: &str, arity: usize) -> (Vec<Instr>, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let mut lifter = crate::lift::Lifter::new();
        let p = lifter.lift_program(&p, &mut syms);
        let atom = syms.intern(name);
        let clauses = p.clauses_for(atom, arity);
        let chunk = compile_predicate(&clauses, &syms, CompileOptions::default()).unwrap();
        (chunk.code, syms)
    }

    fn count_matching(code: &[Instr], f: impl Fn(&Instr) -> bool) -> usize {
        code.iter().filter(|i| f(i)).count()
    }

    #[test]
    fn single_clause_predicate_has_no_choice_instructions() {
        let (code, _) = compile_pred("p(a).", "p", 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Try { .. } | Instr::SwitchOnTerm { .. })), 0);
    }

    #[test]
    fn two_clause_list_predicate_gets_switch_and_chain() {
        let (code, _) = compile_pred("app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).", "app", 3);
        assert!(matches!(code[0], Instr::SwitchOnTerm { .. }));
        // var chain over both clauses
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Try { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Trust { .. })), 1);
        // list dispatch should go straight to clause 2, constants to clause 1
        if let Instr::SwitchOnTerm { lis, con, .. } = &code[0] {
            assert_ne!(*lis, FAIL_SENTINEL);
            assert_ne!(*con, FAIL_SENTINEL);
        }
    }

    #[test]
    fn constant_dispatch_builds_a_table() {
        let (code, _) = compile_pred("color(red).\ncolor(green).\ncolor(blue).", "color", 1);
        let tables = count_matching(&code, |i| matches!(i, Instr::SwitchOnConstant { .. }));
        assert_eq!(tables, 1);
        if let Some(Instr::SwitchOnConstant { table, default }) =
            code.iter().find(|i| matches!(i, Instr::SwitchOnConstant { .. }))
        {
            assert_eq!(table.len(), 3);
            assert_eq!(*default, FAIL_SENTINEL);
        }
    }

    #[test]
    fn structure_dispatch_discriminates_functors() {
        let src = "d(x, 1).\nd(plus(A,B), s(A,B)).\nd(times(A,B), t(A,B)).";
        let (code, _) = compile_pred(src, "d", 2);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::SwitchOnStructure { .. })), 1);
        if let Some(Instr::SwitchOnStructure { table, default }) =
            code.iter().find(|i| matches!(i, Instr::SwitchOnStructure { .. }))
        {
            assert_eq!(table.len(), 2);
            assert_eq!(*default, FAIL_SENTINEL);
        }
    }

    #[test]
    fn variable_first_arg_clause_appears_in_every_category() {
        let src = "m(0, zero).\nm(X, other) :- integer(X).";
        let (code, _) = compile_pred(src, "m", 2);
        // The default of switch_on_constant must not be FAIL because the
        // second clause has a variable first argument.
        if let Some(Instr::SwitchOnConstant { default, .. }) =
            code.iter().find(|i| matches!(i, Instr::SwitchOnConstant { .. }))
        {
            assert_ne!(*default, FAIL_SENTINEL);
        } else {
            panic!("expected a constant switch");
        }
    }

    #[test]
    fn arity_zero_predicates_use_a_plain_chain() {
        let (code, _) = compile_pred("p :- a.\np :- b.", "p", 0);
        assert!(matches!(code[0], Instr::Try { .. }));
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::SwitchOnTerm { .. })), 0);
    }

    #[test]
    fn three_clause_chain_has_try_retry_trust() {
        let (code, _) = compile_pred("f(a).\nf(b).\nf(c).", "f", 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Try { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Retry { .. })), 1);
        assert_eq!(count_matching(&code, |i| matches!(i, Instr::Trust { .. })), 1);
    }
}
