//! Pre-decoded instruction stream: the executor's fetch representation.
//!
//! [`crate::instr::Instr`] is the compiler's working representation — an
//! enum whose variants carry their natural operand types, including heap
//! allocations (switch tables).  That shape is right for code generation
//! and linking but wrong for the dispatch loop: fetching one instruction
//! means indexing a large non-`Copy` enum, and each operand access
//! re-discriminates the variant.
//!
//! The loader therefore pre-decodes the linked code area into a dense
//! stream of fixed-width 12-byte [`DenseInstr`] words, one per `Instr`, in
//! the same order — **index `i` of [`DenseCode::code`] is instruction
//! address `i`**, so every `CodeAddr` in the program (entry points, saved
//! continuation pointers, choice-point alternatives, the fail and
//! goal-success stubs) is valid in both representations and nothing in the
//! engine needs address translation.  Variable-width operands (big
//! integers, switch tables, the four-way `switch_on_term` targets) move
//! into side pools indexed by the instruction's `u32` fields.
//!
//! Register operands are packed into 16 bits with the high bit
//! distinguishing permanent (`Y`) from argument (`X`) registers — see
//! [`encode_reg`] / [`decode_reg`].
//!
//! Operand packing per opcode (unlisted fields are zero):
//!
//! | op | `a: u8` | `b: u16` | `c: u32` | `d: u32` |
//! |---|---|---|---|---|
//! | `PutVariable`/`PutValue`/`GetVariable`/`GetValue` | | reg `v` | arg `a` | |
//! | `PutUnsafeValue` | | `y` | arg `a` | |
//! | `PutConstant`/`GetConstant` | | arg `a` | atom | |
//! | `PutInteger`/`GetInteger` | | arg `a` | int-pool index | |
//! | `PutNil`/`GetNil`/`PutList`/`GetList` | | arg `a` | | |
//! | `PutStructure`/`GetStructure` | `n` | arg `a` | functor atom | |
//! | `UnifyVariable`/`UnifyValue` | | reg `v` | | |
//! | `UnifyConstant` | | | atom | |
//! | `UnifyInteger` | | | int-pool index | |
//! | `UnifyVoid` | `n` | | | |
//! | `Allocate` | | `n` | | |
//! | `CallCode`/`ExecuteCode` | arity | | entry addr | |
//! | `CallBuiltin`/`ExecuteBuiltin` | | | builtin-pool index | |
//! | `CallHost`/`ExecuteHost` | arity | | host-registry index | |
//! | `TryMeElse`/`RetryMeElse`/`Try`/`Retry`/`Trust`/`Jump` | | | code addr | |
//! | `SwitchOnTerm` | | | quad-pool index | |
//! | `SwitchOnConstant`/`SwitchOnStructure` | | | table-pool index | default addr |
//! | `GetLevel`/`CutTo` | | `y` | | |
//! | `CheckGround` | | reg `v` | else addr | |
//! | `CheckIndep` | | reg `v1` | reg `v2` | else addr |
//! | `PcallAlloc` | `n` | | | |
//! | `PcallGoal` | arity | slot | entry addr | |

use crate::instr::{Builtin, CallTarget, CodeAddr, ConstKey, Instr, Reg};
use pwam_front::atoms::Atom;

/// Opcode of a pre-decoded instruction.
///
/// Mostly 1:1 with [`Instr`], with the differences that make dispatch flat:
/// call/execute split per resolved target kind (so the hot code-call path
/// carries no `CallTarget` discrimination), `Instr::Call`-of-a-builtin and
/// `Instr::CallBuiltin` collapse into one opcode (their semantics are
/// identical), and `UnifyLocalValue` collapses into `UnifyValue` (the
/// executor treats them the same).  Ill-formed operands that the classic
/// path reports at run time (`Unresolved` targets, builtin `pcall_goal`
/// targets) keep dedicated opcodes that raise the same errors.  `NeckCut`
/// executes for real in both paths: it commits to the clause by cutting
/// the choice-point stack back to the level captured at call time
/// (`wk.b0`), with a regression test pinning flat and classic to identical
/// answers and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DenseOp {
    PutVariable,
    PutValue,
    PutUnsafeValue,
    PutConstant,
    PutInteger,
    PutNil,
    PutStructure,
    PutList,
    GetVariable,
    GetValue,
    GetConstant,
    GetInteger,
    GetNil,
    GetStructure,
    GetList,
    UnifyVariable,
    UnifyValue,
    UnifyConstant,
    UnifyInteger,
    UnifyNil,
    UnifyVoid,
    Allocate,
    Deallocate,
    CallCode,
    CallBuiltin,
    CallHost,
    CallUnresolved,
    ExecuteCode,
    ExecuteBuiltin,
    ExecuteHost,
    ExecuteUnresolved,
    Proceed,
    TryMeElse,
    RetryMeElse,
    TrustMe,
    Try,
    Retry,
    Trust,
    SwitchOnTerm,
    SwitchOnConstant,
    SwitchOnStructure,
    NeckCut,
    GetLevel,
    CutTo,
    CheckGround,
    CheckIndep,
    PcallAlloc,
    PcallGoal,
    PcallGoalBad,
    PcallWait,
    GoalSuccess,
    Jump,
    FailInstr,
    Halt,
    NoOp,
}

/// High bit of a packed register operand: set for `Y`, clear for `X`.
pub const Y_FLAG: u16 = 0x8000;

/// Pack a register operand into 16 bits.
#[inline(always)]
pub fn encode_reg(r: Reg) -> u16 {
    match r {
        Reg::X(n) => {
            debug_assert!(n < Y_FLAG, "X register index overflows the dense encoding");
            n
        }
        Reg::Y(n) => {
            debug_assert!(n < Y_FLAG, "Y register index overflows the dense encoding");
            n | Y_FLAG
        }
    }
}

/// Unpack a 16-bit register operand.
#[inline(always)]
pub fn decode_reg(enc: u16) -> Reg {
    if enc & Y_FLAG != 0 {
        Reg::Y(enc & !Y_FLAG)
    } else {
        Reg::X(enc)
    }
}

/// One pre-decoded instruction: opcode plus three fixed operand fields.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct DenseInstr {
    pub op: DenseOp,
    pub a: u8,
    pub b: u16,
    pub c: u32,
    pub d: u32,
}

// The whole point of the dense stream is a small, fixed, power-of-two-ish
// fetch granule; catch accidental growth at compile time.
const _: () = assert!(std::mem::size_of::<DenseInstr>() == 12);

impl DenseInstr {
    fn op(op: DenseOp) -> Self {
        DenseInstr { op, a: 0, b: 0, c: 0, d: 0 }
    }
}

/// The pre-decoded code area: the dense stream plus its operand pools.
#[derive(Debug, Clone, Default)]
pub struct DenseCode {
    /// One [`DenseInstr`] per [`Instr`], at the same index.
    pub code: Vec<DenseInstr>,
    /// Integer operands of `put_integer` / `get_integer` / `unify_integer`.
    pub ints: Vec<i64>,
    /// Builtin operands of `CallBuiltin` / `ExecuteBuiltin`.
    pub builtins: Vec<Builtin>,
    /// The four targets of each `switch_on_term`: `[var, con, lis, stru]`.
    pub term_quads: Vec<[CodeAddr; 4]>,
    /// `switch_on_constant` dispatch tables.
    pub const_tables: Vec<Vec<(ConstKey, CodeAddr)>>,
    /// `switch_on_structure` dispatch tables.
    pub struct_tables: Vec<Vec<((Atom, u8), CodeAddr)>>,
}

impl DenseCode {
    /// Pre-decode a linked code area.  Call targets must already be
    /// resolved; `Unresolved` targets are encoded as error opcodes that
    /// reproduce the classic path's run-time diagnostics.
    pub fn build(code: &[Instr]) -> DenseCode {
        assert!(code.len() <= u32::MAX as usize, "code area exceeds the dense address space");
        let mut d = DenseCode::default();
        d.code.reserve_exact(code.len());
        for instr in code {
            let di = d.decode_one(instr);
            d.code.push(di);
        }
        d
    }

    fn int(&mut self, i: i64) -> u32 {
        // Integer literals repeat heavily (0, 1, small constants); dedup
        // keeps the pool cache-resident.
        if let Some(pos) = self.ints.iter().position(|&v| v == i) {
            return pos as u32;
        }
        self.ints.push(i);
        (self.ints.len() - 1) as u32
    }

    fn builtin(&mut self, b: Builtin) -> u32 {
        if let Some(pos) = self.builtins.iter().position(|&v| v == b) {
            return pos as u32;
        }
        self.builtins.push(b);
        (self.builtins.len() - 1) as u32
    }

    fn decode_one(&mut self, instr: &Instr) -> DenseInstr {
        use DenseOp as O;
        match instr {
            Instr::PutVariable { v, a } => {
                DenseInstr { b: encode_reg(*v), c: *a as u32, ..DenseInstr::op(O::PutVariable) }
            }
            Instr::PutValue { v, a } => {
                DenseInstr { b: encode_reg(*v), c: *a as u32, ..DenseInstr::op(O::PutValue) }
            }
            Instr::PutUnsafeValue { y, a } => {
                DenseInstr { b: *y, c: *a as u32, ..DenseInstr::op(O::PutUnsafeValue) }
            }
            Instr::PutConstant { c, a } => DenseInstr { b: *a, c: c.0, ..DenseInstr::op(O::PutConstant) },
            Instr::PutInteger { i, a } => {
                DenseInstr { b: *a, c: self.int(*i), ..DenseInstr::op(O::PutInteger) }
            }
            Instr::PutNil { a } => DenseInstr { b: *a, ..DenseInstr::op(O::PutNil) },
            Instr::PutStructure { f, n, a } => {
                DenseInstr { a: *n, b: *a, c: f.0, ..DenseInstr::op(O::PutStructure) }
            }
            Instr::PutList { a } => DenseInstr { b: *a, ..DenseInstr::op(O::PutList) },
            Instr::GetVariable { v, a } => {
                DenseInstr { b: encode_reg(*v), c: *a as u32, ..DenseInstr::op(O::GetVariable) }
            }
            Instr::GetValue { v, a } => {
                DenseInstr { b: encode_reg(*v), c: *a as u32, ..DenseInstr::op(O::GetValue) }
            }
            Instr::GetConstant { c, a } => DenseInstr { b: *a, c: c.0, ..DenseInstr::op(O::GetConstant) },
            Instr::GetInteger { i, a } => {
                DenseInstr { b: *a, c: self.int(*i), ..DenseInstr::op(O::GetInteger) }
            }
            Instr::GetNil { a } => DenseInstr { b: *a, ..DenseInstr::op(O::GetNil) },
            Instr::GetStructure { f, n, a } => {
                DenseInstr { a: *n, b: *a, c: f.0, ..DenseInstr::op(O::GetStructure) }
            }
            Instr::GetList { a } => DenseInstr { b: *a, ..DenseInstr::op(O::GetList) },
            Instr::UnifyVariable { v } => {
                DenseInstr { b: encode_reg(*v), ..DenseInstr::op(O::UnifyVariable) }
            }
            Instr::UnifyValue { v } | Instr::UnifyLocalValue { v } => {
                DenseInstr { b: encode_reg(*v), ..DenseInstr::op(O::UnifyValue) }
            }
            Instr::UnifyConstant { c } => DenseInstr { c: c.0, ..DenseInstr::op(O::UnifyConstant) },
            Instr::UnifyInteger { i } => DenseInstr { c: self.int(*i), ..DenseInstr::op(O::UnifyInteger) },
            Instr::UnifyNil => DenseInstr::op(O::UnifyNil),
            Instr::UnifyVoid { n } => DenseInstr { a: *n, ..DenseInstr::op(O::UnifyVoid) },
            Instr::Allocate { n } => DenseInstr { b: *n, ..DenseInstr::op(O::Allocate) },
            Instr::Deallocate => DenseInstr::op(O::Deallocate),
            Instr::Call { target, arity } => match target {
                CallTarget::Code(addr) => DenseInstr { a: *arity, c: *addr, ..DenseInstr::op(O::CallCode) },
                CallTarget::Builtin(b) => {
                    DenseInstr { c: self.builtin(*b), ..DenseInstr::op(O::CallBuiltin) }
                }
                CallTarget::Host(h) => DenseInstr { a: *arity, c: *h, ..DenseInstr::op(O::CallHost) },
                CallTarget::Unresolved(_) => DenseInstr::op(O::CallUnresolved),
            },
            Instr::Execute { target, arity } => match target {
                CallTarget::Code(addr) => {
                    DenseInstr { a: *arity, c: *addr, ..DenseInstr::op(O::ExecuteCode) }
                }
                CallTarget::Builtin(b) => {
                    DenseInstr { c: self.builtin(*b), ..DenseInstr::op(O::ExecuteBuiltin) }
                }
                CallTarget::Host(h) => DenseInstr { a: *arity, c: *h, ..DenseInstr::op(O::ExecuteHost) },
                CallTarget::Unresolved(_) => DenseInstr::op(O::ExecuteUnresolved),
            },
            Instr::Proceed => DenseInstr::op(O::Proceed),
            Instr::CallBuiltin { b } => DenseInstr { c: self.builtin(*b), ..DenseInstr::op(O::CallBuiltin) },
            Instr::TryMeElse { else_ } => DenseInstr { c: *else_, ..DenseInstr::op(O::TryMeElse) },
            Instr::RetryMeElse { else_ } => DenseInstr { c: *else_, ..DenseInstr::op(O::RetryMeElse) },
            Instr::TrustMe => DenseInstr::op(O::TrustMe),
            Instr::Try { addr } => DenseInstr { c: *addr, ..DenseInstr::op(O::Try) },
            Instr::Retry { addr } => DenseInstr { c: *addr, ..DenseInstr::op(O::Retry) },
            Instr::Trust { addr } => DenseInstr { c: *addr, ..DenseInstr::op(O::Trust) },
            Instr::SwitchOnTerm { var, con, lis, stru } => {
                self.term_quads.push([*var, *con, *lis, *stru]);
                DenseInstr { c: (self.term_quads.len() - 1) as u32, ..DenseInstr::op(O::SwitchOnTerm) }
            }
            Instr::SwitchOnConstant { table, default } => {
                self.const_tables.push(table.clone());
                DenseInstr {
                    c: (self.const_tables.len() - 1) as u32,
                    d: *default,
                    ..DenseInstr::op(O::SwitchOnConstant)
                }
            }
            Instr::SwitchOnStructure { table, default } => {
                self.struct_tables.push(table.clone());
                DenseInstr {
                    c: (self.struct_tables.len() - 1) as u32,
                    d: *default,
                    ..DenseInstr::op(O::SwitchOnStructure)
                }
            }
            Instr::NeckCut => DenseInstr::op(O::NeckCut),
            Instr::GetLevel { y } => DenseInstr { b: *y, ..DenseInstr::op(O::GetLevel) },
            Instr::CutTo { y } => DenseInstr { b: *y, ..DenseInstr::op(O::CutTo) },
            Instr::CheckGround { v, else_ } => {
                DenseInstr { b: encode_reg(*v), c: *else_, ..DenseInstr::op(O::CheckGround) }
            }
            Instr::CheckIndep { v1, v2, else_ } => DenseInstr {
                b: encode_reg(*v1),
                c: encode_reg(*v2) as u32,
                d: *else_,
                ..DenseInstr::op(O::CheckIndep)
            },
            Instr::PcallAlloc { n } => DenseInstr { a: *n, ..DenseInstr::op(O::PcallAlloc) },
            Instr::PcallGoal { target, arity, slot } => match target {
                CallTarget::Code(addr) => {
                    DenseInstr { a: *arity, b: *slot as u16, c: *addr, ..DenseInstr::op(O::PcallGoal) }
                }
                _ => DenseInstr::op(O::PcallGoalBad),
            },
            Instr::PcallWait => DenseInstr::op(O::PcallWait),
            Instr::GoalSuccess => DenseInstr::op(O::GoalSuccess),
            Instr::Jump { addr } => DenseInstr { c: *addr, ..DenseInstr::op(O::Jump) },
            Instr::FailInstr => DenseInstr::op(O::FailInstr),
            Instr::Halt => DenseInstr::op(O::Halt),
            Instr::NoOp => DenseInstr::op(O::NoOp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::PredRef;

    #[test]
    fn dense_instr_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<DenseInstr>(), 12);
    }

    #[test]
    fn reg_encoding_round_trips() {
        for r in [Reg::X(0), Reg::X(1), Reg::X(255), Reg::Y(1), Reg::Y(0x7fff)] {
            assert_eq!(decode_reg(encode_reg(r)), r);
        }
    }

    #[test]
    fn build_preserves_addresses_one_to_one() {
        let code = vec![
            Instr::PutInteger { i: 42, a: 1 },
            Instr::PutInteger { i: 42, a: 2 },
            Instr::Call { target: CallTarget::Code(7), arity: 2 },
            Instr::Call { target: CallTarget::Builtin(Builtin::True), arity: 0 },
            Instr::CallBuiltin { b: Builtin::True },
            Instr::UnifyLocalValue { v: Reg::Y(3) },
            Instr::SwitchOnTerm { var: 1, con: 2, lis: 3, stru: 4 },
            Instr::Halt,
        ];
        let d = DenseCode::build(&code);
        assert_eq!(d.code.len(), code.len());
        assert_eq!(d.code[0].op, DenseOp::PutInteger);
        // Repeated literals share one pool slot.
        assert_eq!(d.code[0].c, d.code[1].c);
        assert_eq!(d.ints, vec![42]);
        assert_eq!(d.code[2].op, DenseOp::CallCode);
        assert_eq!((d.code[2].a, d.code[2].c), (2, 7));
        // Call-of-builtin and call_builtin share one opcode and pool slot.
        assert_eq!(d.code[3].op, DenseOp::CallBuiltin);
        assert_eq!(d.code[4].op, DenseOp::CallBuiltin);
        assert_eq!(d.code[3].c, d.code[4].c);
        assert_eq!(d.builtins, vec![Builtin::True]);
        assert_eq!(d.code[5].op, DenseOp::UnifyValue);
        assert_eq!(decode_reg(d.code[5].b), Reg::Y(3));
        assert_eq!(d.term_quads[d.code[6].c as usize], [1, 2, 3, 4]);
        assert_eq!(d.code[7].op, DenseOp::Halt);
    }

    #[test]
    fn unresolved_targets_become_error_opcodes() {
        let pr = PredRef { name: Atom(9), arity: 1 };
        let code = vec![
            Instr::Call { target: CallTarget::Unresolved(pr), arity: 1 },
            Instr::Execute { target: CallTarget::Unresolved(pr), arity: 1 },
            Instr::PcallGoal { target: CallTarget::Builtin(Builtin::True), arity: 0, slot: 0 },
        ];
        let d = DenseCode::build(&code);
        assert_eq!(d.code[0].op, DenseOp::CallUnresolved);
        assert_eq!(d.code[1].op, DenseOp::ExecuteUnresolved);
        assert_eq!(d.code[2].op, DenseOp::PcallGoalBad);
    }
}
