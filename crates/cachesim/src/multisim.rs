//! The multiprocessor cache simulator proper: per-PE LRU caches kept
//! coherent over a shared bus, with bus-traffic accounting.
//!
//! ## Traffic accounting
//!
//! The figure of merit is the *traffic ratio* — data words moved over the
//! bus per word referenced by a processor.  The simulator counts:
//!
//! * line fetches (`line_words` per fetch, whether served by memory or by a
//!   remote cache),
//! * words written through to memory,
//! * word-update broadcasts (update protocols),
//! * write-backs of dirty lines (`line_words` each).
//!
//! Pure invalidation signals carry no data word; they are counted as bus
//! transactions (and in `invalidations`) but contribute zero words, which is
//! the convention that makes the conventional write-through cache look as
//! bad as it does in the paper.

use crate::config::{Protocol, SimConfig};
use crate::lru::{LineState, LruCache};
use crate::results::SimResult;
use rapwam::{Locality, MemRef};

/// The simulator state: one cache per PE plus the shared-bus counters.
#[derive(Debug)]
pub struct MultiCacheSim {
    config: SimConfig,
    caches: Vec<LruCache>,
    result: SimResult,
}

impl MultiCacheSim {
    pub fn new(config: SimConfig) -> Self {
        let caches = (0..config.num_pes).map(|_| LruCache::new(config.cache.capacity_lines())).collect();
        MultiCacheSim { config, caches, result: SimResult::new(config) }
    }

    /// The line address containing a word address.
    fn line_of(&self, addr: u32) -> u32 {
        addr / self.config.cache.line_words
    }

    /// Feed one reference into the simulator.
    pub fn access(&mut self, pe: usize, addr: u32, write: bool, locality: Locality) {
        assert!(
            pe < self.config.num_pes,
            "reference from PE {pe} but only {} PEs configured",
            self.config.num_pes
        );
        let line = self.line_of(addr);
        self.result.refs += 1;
        if write {
            self.result.writes += 1;
            self.write_access(pe, line, locality);
        } else {
            self.result.reads += 1;
            self.read_access(pe, line);
        }
    }

    /// Feed a whole trace.
    pub fn run_trace(&mut self, trace: &[MemRef]) {
        for r in trace {
            self.access(r.pe as usize, r.addr, r.write, r.locality);
        }
    }

    /// Finish the simulation and return the results.  Dirty lines remaining
    /// in the caches are *not* flushed (the paper measures steady-state
    /// traffic, not a final flush).
    pub fn finish(self) -> SimResult {
        self.result
    }

    // -----------------------------------------------------------------

    fn read_access(&mut self, pe: usize, line: u32) {
        if self.caches[pe].touch(line).is_some() {
            return; // read hit: no bus traffic
        }
        self.result.read_misses += 1;
        // A dirty remote copy supplies the line (and memory snoops the same
        // transfer), so the data words are only counted once — by the fetch
        // below; clean remote copies just become shared.
        let mut remote_copy = false;
        for other in 0..self.caches.len() {
            if other == pe {
                continue;
            }
            match self.caches[other].peek(line) {
                Some(LineState::Dirty) => {
                    self.result.write_backs += 1;
                    self.caches[other].set_state(line, LineState::Shared);
                    remote_copy = true;
                }
                Some(_) => {
                    self.caches[other].set_state(line, LineState::Shared);
                    remote_copy = true;
                }
                None => {}
            }
        }
        // Fetch the line (from memory or the supplying cache).
        self.fetch_line(pe, line, if remote_copy { LineState::Shared } else { LineState::Exclusive });
    }

    fn write_access(&mut self, pe: usize, line: u32, locality: Locality) {
        let hit = self.caches[pe].touch(line).is_some();
        if !hit {
            self.result.write_misses += 1;
        }
        match self.config.protocol {
            Protocol::WriteThrough => self.write_through(pe, line, hit, true),
            Protocol::Hybrid => match locality {
                Locality::Global => self.write_through(pe, line, hit, false),
                Locality::Local => self.write_back_private(pe, line, hit),
            },
            Protocol::WriteInBroadcast => self.write_invalidate(pe, line, hit),
            Protocol::WriteThroughBroadcast => self.write_update(pe, line, hit),
        }
    }

    /// Conventional write-through: the word always goes to memory and remote
    /// copies are invalidated.  When `allocate_policy` is true the cache's
    /// write-allocate setting decides whether a missing block is fetched;
    /// the hybrid protocol's global writes never allocate.
    fn write_through(&mut self, pe: usize, line: u32, hit: bool, allocate_policy: bool) {
        self.invalidate_others(pe, line);
        // The written word travels to memory.
        self.result.write_through_words += 1;
        self.result.bus_words += 1;
        self.result.bus_transactions += 1;
        if hit {
            // Copy stays valid and consistent (memory was just updated).
            self.caches[pe].set_state(line, LineState::Shared);
        } else if allocate_policy && self.config.cache.write_allocate {
            self.fetch_line(pe, line, LineState::Shared);
        }
    }

    /// Copy-back of local (unshared) data: no coherency actions at all.
    fn write_back_private(&mut self, pe: usize, line: u32, hit: bool) {
        if hit {
            self.caches[pe].set_state(line, LineState::Dirty);
            return;
        }
        if self.config.cache.write_allocate {
            self.fetch_line(pe, line, LineState::Dirty);
        } else {
            self.result.write_through_words += 1;
            self.result.bus_words += 1;
            self.result.bus_transactions += 1;
        }
    }

    /// Write-in broadcast (invalidate-based write-back).
    fn write_invalidate(&mut self, pe: usize, line: u32, hit: bool) {
        if hit {
            match self.caches[pe].peek(line).expect("hit implies resident") {
                LineState::Dirty => {}
                LineState::Exclusive => {
                    self.caches[pe].set_state(line, LineState::Dirty);
                }
                LineState::Shared => {
                    self.invalidate_others(pe, line);
                    self.caches[pe].set_state(line, LineState::Dirty);
                }
            }
            return;
        }
        // Write miss.
        // A dirty remote copy supplies the block in the same transaction as
        // the fetch below (read-with-intent-to-modify); only count it once.
        for other in 0..self.caches.len() {
            if other != pe && self.caches[other].peek(line) == Some(LineState::Dirty) {
                self.result.write_backs += 1;
            }
        }
        self.invalidate_others(pe, line);
        if self.config.cache.write_allocate {
            // Read the block with intent to modify.
            self.fetch_line(pe, line, LineState::Dirty);
        } else {
            // No allocation: the word goes straight to memory.
            self.result.write_through_words += 1;
            self.result.bus_words += 1;
            self.result.bus_transactions += 1;
        }
    }

    /// Write-through broadcast (update-based): writes to shared blocks
    /// broadcast the word, private blocks are copied back.
    fn write_update(&mut self, pe: usize, line: u32, hit: bool) {
        let shared_elsewhere = (0..self.caches.len()).any(|o| o != pe && self.caches[o].peek(line).is_some());
        if hit {
            if shared_elsewhere {
                // Broadcast the word to the other caches and memory.
                self.result.updates += 1;
                self.result.bus_words += 1;
                self.result.bus_transactions += 1;
                self.caches[pe].set_state(line, LineState::Shared);
            } else {
                self.caches[pe].set_state(line, LineState::Dirty);
            }
            return;
        }
        // Write miss.
        if self.config.cache.write_allocate {
            let state = if shared_elsewhere { LineState::Shared } else { LineState::Dirty };
            // A dirty remote copy supplies the block as part of the fetch.
            for other in 0..self.caches.len() {
                if other != pe && self.caches[other].peek(line) == Some(LineState::Dirty) {
                    self.result.write_backs += 1;
                    self.caches[other].set_state(line, LineState::Shared);
                }
            }
            self.fetch_line(pe, line, state);
            if shared_elsewhere {
                self.result.updates += 1;
                self.result.bus_words += 1;
                self.result.bus_transactions += 1;
            }
        } else {
            // Word to memory plus update of any remote copies.
            self.result.write_through_words += 1;
            self.result.bus_words += 1;
            self.result.bus_transactions += 1;
            if shared_elsewhere {
                self.result.updates += 1;
            }
        }
    }

    fn invalidate_others(&mut self, pe: usize, line: u32) {
        let mut any = false;
        for other in 0..self.caches.len() {
            if other == pe {
                continue;
            }
            if self.caches[other].invalidate(line).is_some() {
                self.result.copies_invalidated += 1;
                any = true;
            }
        }
        if any {
            self.result.invalidations += 1;
            self.result.bus_transactions += 1;
        }
    }

    /// Bring a line into `pe`'s cache, accounting the fetch and any eviction
    /// write-back.
    fn fetch_line(&mut self, pe: usize, line: u32, state: LineState) {
        self.result.line_fetches += 1;
        self.result.bus_words += self.config.cache.line_words as u64;
        self.result.bus_transactions += 1;
        if let Some((_victim, vstate)) = self.caches[pe].insert(line, state) {
            if vstate == LineState::Dirty {
                self.result.write_backs += 1;
                self.result.bus_words += self.config.cache.line_words as u64;
                self.result.bus_transactions += 1;
            }
        }
    }

    /// Test-only invariant: in invalidation-based protocols a line may be
    /// dirty in at most one cache, and if it is dirty nowhere else may hold
    /// it at all.
    #[cfg(test)]
    pub(crate) fn check_single_writer(&self) {
        use std::collections::HashMap;
        let mut dirty: HashMap<u32, usize> = HashMap::new();
        let mut holders: HashMap<u32, usize> = HashMap::new();
        for c in &self.caches {
            for (line, state) in c.resident() {
                *holders.entry(line).or_default() += 1;
                if state == LineState::Dirty {
                    *dirty.entry(line).or_default() += 1;
                }
            }
        }
        for (line, d) in dirty {
            assert!(d <= 1, "line {line} dirty in {d} caches");
            if matches!(self.config.protocol, Protocol::WriteInBroadcast | Protocol::WriteThrough) {
                assert_eq!(holders[&line], 1, "dirty line {line} has {} holders", holders[&line]);
            }
        }
    }
}

/// Run one configuration over a trace.
pub fn simulate(config: &SimConfig, trace: &[MemRef]) -> SimResult {
    let mut sim = MultiCacheSim::new(*config);
    sim.run_trace(trace);
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn cfg(protocol: Protocol, size: u32, write_allocate: bool, pes: usize) -> SimConfig {
        SimConfig {
            cache: CacheConfig { size_words: size, line_words: 4, write_allocate },
            protocol,
            num_pes: pes,
        }
    }

    fn r(pe: u8, addr: u32, write: bool) -> MemRef {
        use rapwam::{Area, ObjectKind};
        MemRef {
            pe,
            addr,
            write,
            area: Area::Heap,
            object: ObjectKind::HeapTerm,
            locality: Locality::Global,
            locked: false,
        }
    }

    fn r_local(pe: u8, addr: u32, write: bool) -> MemRef {
        use rapwam::{Area, ObjectKind};
        MemRef {
            pe,
            addr,
            write,
            area: Area::Trail,
            object: ObjectKind::TrailEntry,
            locality: Locality::Local,
            locked: false,
        }
    }

    #[test]
    fn repeated_reads_hit_after_the_first_miss() {
        let trace: Vec<_> = (0..100).map(|_| r(0, 40, false)).collect();
        let res = simulate(&cfg(Protocol::WriteInBroadcast, 256, true, 1), &trace);
        assert_eq!(res.read_misses, 1);
        assert_eq!(res.bus_words, 4);
        assert!(res.traffic_ratio() < 0.05);
    }

    #[test]
    fn write_through_sends_every_write_to_the_bus() {
        let trace: Vec<_> = (0..50).map(|_| r(0, 8, true)).collect();
        let res = simulate(&cfg(Protocol::WriteThrough, 256, false, 1), &trace);
        assert_eq!(res.write_through_words, 50);
        assert!(res.bus_words >= 50);
        assert!(res.traffic_ratio() >= 1.0);
    }

    #[test]
    fn write_in_broadcast_keeps_repeated_writes_off_the_bus() {
        let mut trace = vec![r(0, 8, false)]; // fetch the line once
        trace.extend((0..50).map(|_| r(0, 8, true)));
        let res = simulate(&cfg(Protocol::WriteInBroadcast, 256, true, 1), &trace);
        // one fetch of 4 words, then everything is a dirty hit
        assert_eq!(res.bus_words, 4);
    }

    #[test]
    fn invalidation_on_shared_write() {
        // PE0 and PE1 read the same line, then PE0 writes it.
        let trace = vec![r(0, 8, false), r(1, 8, false), r(0, 8, true), r(1, 8, false)];
        let res = simulate(&cfg(Protocol::WriteInBroadcast, 256, true, 2), &trace);
        assert_eq!(res.invalidations, 1);
        assert_eq!(res.copies_invalidated, 1);
        // PE1 must re-fetch after the invalidation (plus a write-back of the
        // dirty copy held by PE0).
        assert_eq!(res.read_misses, 3);
        assert!(res.write_backs >= 1);
    }

    #[test]
    fn update_protocol_does_not_invalidate() {
        let trace = vec![r(0, 8, false), r(1, 8, false), r(0, 8, true), r(1, 8, false)];
        let res = simulate(&cfg(Protocol::WriteThroughBroadcast, 256, true, 2), &trace);
        assert_eq!(res.invalidations, 0);
        assert_eq!(res.updates, 1);
        // PE1's second read is a hit thanks to the update.
        assert_eq!(res.read_misses, 2);
    }

    #[test]
    fn hybrid_copies_back_local_data_and_writes_through_global_data() {
        // 10 local writes to one line: with write-allocate the block is
        // fetched once and everything else stays in the cache.
        let local: Vec<_> = (0..10).map(|_| r_local(0, 100, true)).collect();
        let res_local = simulate(&cfg(Protocol::Hybrid, 256, true, 1), &local);
        assert_eq!(res_local.bus_words, 4);

        // 10 global writes are all written through.
        let global: Vec<_> = (0..10).map(|_| r(0, 100, true)).collect();
        let res_global = simulate(&cfg(Protocol::Hybrid, 256, true, 1), &global);
        assert_eq!(res_global.write_through_words, 10);
    }

    #[test]
    fn hybrid_traffic_sits_between_broadcast_and_write_through() {
        // A mixed synthetic trace: mostly local writes, some shared reads
        // and global writes across 2 PEs.
        let mut trace = Vec::new();
        for i in 0..2000u32 {
            let pe = (i % 2) as u8;
            let base = 1000 + (pe as u32) * 4096;
            trace.push(r_local(pe, base + (i % 64), true));
            trace.push(r(pe, 200 + (i % 32), false));
            if i % 10 == 0 {
                trace.push(r(pe, 200 + (i % 32), true));
            }
        }
        let broadcast = simulate(&cfg(Protocol::WriteInBroadcast, 512, true, 2), &trace).traffic_ratio();
        let hybrid = simulate(&cfg(Protocol::Hybrid, 512, true, 2), &trace).traffic_ratio();
        let wthru = simulate(&cfg(Protocol::WriteThrough, 512, true, 2), &trace).traffic_ratio();
        assert!(broadcast <= hybrid + 1e-9, "broadcast {broadcast} should not exceed hybrid {hybrid}");
        assert!(hybrid <= wthru + 1e-9, "hybrid {hybrid} should not exceed write-through {wthru}");
        assert!(wthru > broadcast, "write-through must generate more traffic than broadcast");
    }

    #[test]
    fn no_write_allocate_skips_the_fetch_on_write_miss() {
        let trace = vec![r(0, 8, true), r(0, 8, false)];
        let nwa = simulate(&cfg(Protocol::WriteInBroadcast, 256, false, 1), &trace);
        let wa = simulate(&cfg(Protocol::WriteInBroadcast, 256, true, 1), &trace);
        // nwa: 1 word write-through + 4 word fetch on the read.
        assert_eq!(nwa.bus_words, 5);
        // wa: 4 word fetch on the write, read hits.
        assert_eq!(wa.bus_words, 4);
    }

    #[test]
    fn single_writer_invariant_holds_on_a_random_trace() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for protocol in [Protocol::WriteInBroadcast, Protocol::WriteThrough] {
            let mut sim = MultiCacheSim::new(cfg(protocol, 64, true, 4));
            for _ in 0..5000 {
                let pe = rng.random_range(0..4u8);
                let addr = rng.random_range(0..256u32);
                let write = rng.random_bool(0.3);
                sim.access(pe as usize, addr, write, Locality::Global);
                sim.check_single_writer();
            }
        }
    }

    #[test]
    fn traffic_decreases_with_cache_size() {
        // A trace with temporal locality: a sliding working set re-reads
        // recent addresses much more often than old ones.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut trace = Vec::new();
        for i in 0..30_000u32 {
            let base = i / 20; // slowly advancing frontier
            let back = rng.random_range(0..200u32).min(base);
            trace.push(r(0, (base - back) * 2, rng.random_bool(0.25)));
        }
        let mut ratios = Vec::new();
        for size in [64u32, 256, 1024, 4096] {
            let res = simulate(&cfg(Protocol::WriteInBroadcast, size, size >= 512, 1), &trace);
            ratios.push(res.traffic_ratio());
        }
        // Small wobbles are possible; the overall trend must be decreasing
        // and a big cache must capture far more than a tiny one.
        for pair in ratios.windows(2) {
            assert!(pair[1] <= pair[0] + 0.05, "traffic ratios not roughly decreasing: {ratios:?}");
        }
        assert!(
            ratios[3] < ratios[0] * 0.6,
            "a 4096-word cache should capture much more than a 64-word one: {ratios:?}"
        );
    }
}
