//! Parallel parameter sweeps.
//!
//! Regenerating Figure 4 means simulating every (protocol × cache size ×
//! PE count) combination over four benchmark traces.  The traces are shared
//! read-only; each configuration is an independent simulation, so the sweep
//! fans the configurations out over OS threads (scoped threads + a crossbeam
//! channel as the work queue).

use crate::config::SimConfig;
use crate::multisim::simulate;
use crate::results::SimResult;
use rapwam::MemRef;
use serde::{Deserialize, Serialize};

/// Run every configuration over the same trace, in parallel, preserving the
/// order of `configs` in the returned vector.
pub fn run_sweep(trace: &[MemRef], configs: &[SimConfig]) -> Vec<SimResult> {
    run_sweep_with_threads(trace, configs, num_threads())
}

/// As [`run_sweep`] but with an explicit worker-thread count (used by the
/// scaling benchmark).
pub fn run_sweep_with_threads(trace: &[MemRef], configs: &[SimConfig], threads: usize) -> Vec<SimResult> {
    let threads = threads.max(1).min(configs.len().max(1));
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(|c| simulate(c, trace)).collect();
    }

    let (tx_work, rx_work) = crossbeam::channel::unbounded::<usize>();
    for i in 0..configs.len() {
        tx_work.send(i).expect("queue send");
    }
    drop(tx_work);

    let mut results: Vec<Option<SimResult>> = vec![None; configs.len()];
    let (tx_res, rx_res) = crossbeam::channel::unbounded::<(usize, SimResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx_work = rx_work.clone();
            let tx_res = tx_res.clone();
            scope.spawn(move || {
                while let Ok(i) = rx_work.recv() {
                    let r = simulate(&configs[i], trace);
                    tx_res.send((i, r)).expect("result send");
                }
            });
        }
        drop(tx_res);
        while let Ok((i, r)) = rx_res.recv() {
            results[i] = Some(r);
        }
    });
    results.into_iter().map(|r| r.expect("every configuration simulated")).collect()
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Mean traffic ratio over several benchmark results for the same
/// configuration — the quantity Figure 4 plots ("averaged over the four
/// benchmarks").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanTraffic {
    pub config: SimConfig,
    pub per_benchmark: Vec<f64>,
    pub mean: f64,
}

impl MeanTraffic {
    /// Average the traffic ratios of per-benchmark results that share a
    /// configuration.
    pub fn from_results(config: SimConfig, results: &[&SimResult]) -> MeanTraffic {
        let per_benchmark: Vec<f64> = results.iter().map(|r| r.traffic_ratio()).collect();
        let mean = if per_benchmark.is_empty() {
            0.0
        } else {
            per_benchmark.iter().sum::<f64>() / per_benchmark.len() as f64
        };
        MeanTraffic { config, per_benchmark, mean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, Protocol};
    use rapwam::{Area, Locality, ObjectKind};

    fn synthetic_trace(n: u32) -> Vec<MemRef> {
        (0..n)
            .map(|i| MemRef {
                pe: (i % 2) as u8,
                addr: (i * 7) % 4096,
                write: i % 4 == 0,
                area: Area::Heap,
                object: ObjectKind::HeapTerm,
                locality: Locality::Global,
                locked: false,
            })
            .collect()
    }

    fn configs() -> Vec<SimConfig> {
        let mut out = Vec::new();
        for protocol in Protocol::ALL {
            for size in [64u32, 256, 1024] {
                out.push(SimConfig {
                    cache: CacheConfig { size_words: size, line_words: 4, write_allocate: size >= 512 },
                    protocol,
                    num_pes: 2,
                });
            }
        }
        out
    }

    #[test]
    fn parallel_sweep_matches_sequential_simulation() {
        let trace = synthetic_trace(20_000);
        let configs = configs();
        let parallel = run_sweep(&trace, &configs);
        for (cfg, par) in configs.iter().zip(&parallel) {
            let seq = simulate(cfg, &trace);
            assert_eq!(par.bus_words, seq.bus_words, "config {cfg:?}");
            assert_eq!(par.refs, seq.refs);
            assert_eq!(par.read_misses, seq.read_misses);
        }
    }

    #[test]
    fn sweep_preserves_configuration_order() {
        let trace = synthetic_trace(5_000);
        let configs = configs();
        let results = run_sweep(&trace, &configs);
        assert_eq!(results.len(), configs.len());
        for (cfg, res) in configs.iter().zip(&results) {
            assert_eq!(&res.config, cfg);
        }
    }

    #[test]
    fn single_thread_fallback_works() {
        let trace = synthetic_trace(1_000);
        let configs = configs();
        let results = run_sweep_with_threads(&trace, &configs, 1);
        assert_eq!(results.len(), configs.len());
    }

    #[test]
    fn mean_traffic_averages() {
        let trace = synthetic_trace(2_000);
        let cfg = configs()[0];
        let a = simulate(&cfg, &trace);
        let b = simulate(&cfg, &trace[..1000]);
        let mean = MeanTraffic::from_results(cfg, &[&a, &b]);
        let expected = (a.traffic_ratio() + b.traffic_ratio()) / 2.0;
        assert!((mean.mean - expected).abs() < 1e-12);
        assert_eq!(mean.per_benchmark.len(), 2);
    }
}
