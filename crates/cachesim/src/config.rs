//! Simulation configuration: cache geometry and coherency protocol.

use serde::{Deserialize, Serialize};

/// Geometry and allocation policy of one PE's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in words.
    pub size_words: u32,
    /// Line (block) size in words; the paper uses 4-word lines throughout.
    pub line_words: u32,
    /// `true` = write-allocate (a write miss fetches the block),
    /// `false` = no-write-allocate (a write miss goes straight to memory).
    pub write_allocate: bool,
}

impl CacheConfig {
    /// Number of lines the cache can hold.
    pub fn capacity_lines(&self) -> u32 {
        (self.size_words / self.line_words).max(1)
    }

    /// The allocation policy the paper found best for each size:
    /// no-write-allocate below 512 words, write-allocate at 512 words and
    /// above (hybrid caches keep no-write-allocate at 512).
    pub fn paper_policy(size_words: u32, protocol: Protocol) -> CacheConfig {
        let write_allocate = match protocol {
            Protocol::Hybrid => size_words > 512,
            _ => size_words >= 512,
        };
        CacheConfig { size_words, line_words: 4, write_allocate }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { size_words: 1024, line_words: 4, write_allocate: true }
    }
}

/// Cache-coherency protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Conventional write-through with invalidation of remote copies.
    WriteThrough,
    /// Write-back broadcast cache, invalidation-based ("write-in").
    WriteInBroadcast,
    /// Broadcast cache that updates remote copies (and memory) on writes to
    /// shared blocks.
    WriteThroughBroadcast,
    /// The paper's hybrid scheme: global-tagged data written through,
    /// local-tagged data copied back.
    Hybrid,
}

impl Protocol {
    /// All protocols, in the order the paper discusses them.
    pub const ALL: [Protocol; 4] = [
        Protocol::WriteInBroadcast,
        Protocol::WriteThroughBroadcast,
        Protocol::Hybrid,
        Protocol::WriteThrough,
    ];

    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::WriteThrough => "write-thru",
            Protocol::WriteInBroadcast => "broadcast",
            Protocol::WriteThroughBroadcast => "wt-broadcast",
            Protocol::Hybrid => "hybrid",
        }
    }
}

/// One complete simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimConfig {
    pub cache: CacheConfig,
    pub protocol: Protocol,
    /// Number of PEs (the trace may mention fewer; referencing PE ids must be
    /// smaller than this).
    pub num_pes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_in_lines() {
        let c = CacheConfig { size_words: 1024, line_words: 4, write_allocate: true };
        assert_eq!(c.capacity_lines(), 256);
        let tiny = CacheConfig { size_words: 2, line_words: 4, write_allocate: false };
        assert_eq!(tiny.capacity_lines(), 1);
    }

    #[test]
    fn paper_policy_matches_section_3_2() {
        // "no-write-allocate is best for small caches"; 512/1024 used
        // write-allocate except hybrid at 512.
        assert!(!CacheConfig::paper_policy(256, Protocol::WriteInBroadcast).write_allocate);
        assert!(CacheConfig::paper_policy(512, Protocol::WriteInBroadcast).write_allocate);
        assert!(!CacheConfig::paper_policy(512, Protocol::Hybrid).write_allocate);
        assert!(CacheConfig::paper_policy(1024, Protocol::Hybrid).write_allocate);
        assert_eq!(CacheConfig::paper_policy(64, Protocol::WriteThrough).line_words, 4);
    }

    #[test]
    fn protocol_names_are_distinct() {
        let names: std::collections::HashSet<_> = Protocol::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Protocol::ALL.len());
    }
}
