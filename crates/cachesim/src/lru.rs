//! A fully associative cache with perfect LRU replacement.
//!
//! The paper models caches "as fully associative memories with perfect LRU
//! replacement"; this module provides exactly that, parameterised by the
//! number of lines.  Each resident line carries a protocol-specific
//! [`LineState`].

use std::collections::HashMap;

/// Coherency state of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean, other caches may also hold the line.
    Shared,
    /// Clean, this is the only cached copy.
    Exclusive,
    /// Modified with respect to main memory; must be written back on
    /// eviction (only used by copy-back style protocols).
    Dirty,
}

/// One PE's cache.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_lines: u32,
    /// line address -> (state, last-use stamp)
    lines: HashMap<u32, (LineState, u64)>,
    tick: u64,
}

impl LruCache {
    pub fn new(capacity_lines: u32) -> Self {
        LruCache { capacity_lines: capacity_lines.max(1), lines: HashMap::new(), tick: 0 }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// State of a resident line, touching it for LRU purposes.
    pub fn touch(&mut self, line: u32) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        self.lines.get_mut(&line).map(|e| {
            e.1 = tick;
            e.0
        })
    }

    /// State of a resident line without touching LRU order.
    pub fn peek(&self, line: u32) -> Option<LineState> {
        self.lines.get(&line).map(|e| e.0)
    }

    /// Change the state of a resident line (no LRU effect).  Returns `false`
    /// if the line is not resident.
    pub fn set_state(&mut self, line: u32, state: LineState) -> bool {
        if let Some(e) = self.lines.get_mut(&line) {
            e.0 = state;
            true
        } else {
            false
        }
    }

    /// Remove a line (invalidation).  Returns its state if it was resident.
    pub fn invalidate(&mut self, line: u32) -> Option<LineState> {
        self.lines.remove(&line).map(|e| e.0)
    }

    /// Insert a line, evicting the least recently used one if the cache is
    /// full.  Returns the evicted `(line, state)` if an eviction occurred.
    pub fn insert(&mut self, line: u32, state: LineState) -> Option<(u32, LineState)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.lines.get_mut(&line) {
            e.0 = state;
            e.1 = tick;
            return None;
        }
        let mut evicted = None;
        if self.lines.len() as u32 >= self.capacity_lines {
            // Perfect LRU: evict the entry with the smallest stamp.
            if let Some((&victim, &(vstate, _))) = self.lines.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                self.lines.remove(&victim);
                evicted = Some((victim, vstate));
            }
        }
        self.lines.insert(line, (state, tick));
        evicted
    }

    /// Iterate over resident lines (for invariant checks in tests).
    pub fn resident(&self) -> impl Iterator<Item = (u32, LineState)> + '_ {
        self.lines.iter().map(|(l, (s, _))| (*l, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert_eq!(c.touch(10), None);
        c.insert(10, LineState::Shared);
        assert_eq!(c.touch(10), Some(LineState::Shared));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, LineState::Shared);
        c.insert(2, LineState::Shared);
        c.touch(1); // 2 is now LRU
        let evicted = c.insert(3, LineState::Exclusive);
        assert_eq!(evicted, Some((2, LineState::Shared)));
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn insert_of_resident_line_updates_state_without_eviction() {
        let mut c = LruCache::new(1);
        c.insert(5, LineState::Shared);
        let evicted = c.insert(5, LineState::Dirty);
        assert_eq!(evicted, None);
        assert_eq!(c.peek(5), Some(LineState::Dirty));
    }

    #[test]
    fn invalidation_removes_the_line() {
        let mut c = LruCache::new(4);
        c.insert(9, LineState::Dirty);
        assert_eq!(c.invalidate(9), Some(LineState::Dirty));
        assert_eq!(c.invalidate(9), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = LruCache::new(3);
        for i in 0..100 {
            c.insert(i, LineState::Shared);
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn set_state_only_affects_resident_lines() {
        let mut c = LruCache::new(2);
        assert!(!c.set_state(7, LineState::Dirty));
        c.insert(7, LineState::Exclusive);
        assert!(c.set_state(7, LineState::Dirty));
        assert_eq!(c.peek(7), Some(LineState::Dirty));
    }
}
