//! Simulation results and derived metrics.

use crate::config::SimConfig;
use serde::{Deserialize, Serialize};

/// Counters and derived metrics of one cache simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced this result.
    pub config: SimConfig,
    /// Processor references fed to the caches.
    pub refs: u64,
    pub reads: u64,
    pub writes: u64,
    /// Misses.
    pub read_misses: u64,
    pub write_misses: u64,
    /// Words of data moved over the bus (line fetches, write-throughs,
    /// write-backs, update broadcasts).
    pub bus_words: u64,
    /// Bus transactions (each data transfer or control broadcast counts one).
    pub bus_transactions: u64,
    /// Invalidation broadcasts sent.
    pub invalidations: u64,
    /// Remote copies actually invalidated.
    pub copies_invalidated: u64,
    /// Word-update broadcasts sent (update-based protocols).
    pub updates: u64,
    /// Dirty lines written back on eviction or intervention.
    pub write_backs: u64,
    /// Line fetches from memory (or a remote cache).
    pub line_fetches: u64,
    /// Words written through to memory.
    pub write_through_words: u64,
}

impl SimResult {
    /// Create an empty result for a configuration.
    pub fn new(config: SimConfig) -> Self {
        SimResult {
            config,
            refs: 0,
            reads: 0,
            writes: 0,
            read_misses: 0,
            write_misses: 0,
            bus_words: 0,
            bus_transactions: 0,
            invalidations: 0,
            copies_invalidated: 0,
            updates: 0,
            write_backs: 0,
            line_fetches: 0,
            write_through_words: 0,
        }
    }

    /// Traffic ratio: bus words per processor-referenced word.  This is the
    /// quantity plotted in Figure 4 of the paper.
    pub fn traffic_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.bus_words as f64 / self.refs as f64
        }
    }

    /// Overall miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / self.refs as f64
        }
    }

    /// Read miss ratio.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Fraction of processor traffic captured by the caches (does not appear
    /// on the bus); the paper quotes >70% for 128-word broadcast caches.
    pub fn capture_ratio(&self) -> f64 {
        1.0 - self.traffic_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, Protocol};

    fn cfg() -> SimConfig {
        SimConfig { cache: CacheConfig::default(), protocol: Protocol::WriteInBroadcast, num_pes: 2 }
    }

    #[test]
    fn ratios() {
        let mut r = SimResult::new(cfg());
        r.refs = 1000;
        r.reads = 700;
        r.writes = 300;
        r.read_misses = 70;
        r.write_misses = 30;
        r.bus_words = 250;
        assert!((r.traffic_ratio() - 0.25).abs() < 1e-12);
        assert!((r.miss_ratio() - 0.1).abs() < 1e-12);
        assert!((r.read_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((r.capture_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_all_zero() {
        let r = SimResult::new(cfg());
        assert_eq!(r.traffic_ratio(), 0.0);
        assert_eq!(r.miss_ratio(), 0.0);
    }
}
