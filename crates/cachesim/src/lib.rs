//! # pwam-cachesim — multiprocessor coherent-cache simulator
//!
//! Reimplementation of the cache-simulation methodology of the ICPP'88 paper
//! (originally Tick's parameterised multiprocessor cache simulator): each PE
//! has a **fully associative cache with perfect LRU replacement**, caches are
//! kept coherent over a shared bus, and the figure of merit is the **traffic
//! ratio** — words moved over the bus divided by words referenced by the
//! processors.
//!
//! Supported coherency schemes (Section 3.1 of the paper):
//!
//! * [`Protocol::WriteThrough`] — the conventional write-through /
//!   invalidate scheme of early coherent caches,
//! * [`Protocol::WriteInBroadcast`] — write-back broadcast cache that
//!   *invalidates* remote copies on a write ("write-in"),
//! * [`Protocol::WriteThroughBroadcast`] — broadcast cache that *updates*
//!   remote copies on a write,
//! * [`Protocol::Hybrid`] — the paper's firmware-controlled scheme: data
//!   tagged *global* (potentially shared, per Table 1) is written through,
//!   data tagged *local* is copied back.
//!
//! The input is the memory-reference trace produced by the `rapwam` engine
//! ([`rapwam::MemRef`]), and the output is a [`SimResult`] per configuration.
//! [`sweep`] runs whole parameter sweeps across OS threads.

pub mod config;
pub mod lru;
pub mod multisim;
pub mod queueing;
pub mod results;
pub mod sweep;

pub use config::{CacheConfig, Protocol, SimConfig};
pub use multisim::{simulate, MultiCacheSim};
pub use queueing::{BusModel, BusModelResult};
pub use results::SimResult;
pub use sweep::{run_sweep, MeanTraffic};
