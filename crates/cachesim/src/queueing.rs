//! Bus-contention queueing model.
//!
//! Section 3.3 of the paper notes that traffic ratio alone does not capture
//! the time penalty of contention for the shared bus, and refers to a
//! queueing model (from Tick's thesis) showing that "with a relatively fast
//! bus and an interleaved memory shared memory efficiency can be high".
//!
//! This module provides that missing piece as an M/D/1-style model: each PE
//! issues bus requests at a rate derived from its reference rate and the
//! measured traffic ratio; the bus serves requests with a deterministic
//! service time per word.  The model reports bus utilisation, the mean wait
//! per request, and the resulting processing efficiency (fraction of peak PE
//! speed retained).

use serde::{Deserialize, Serialize};

/// Parameters of the two-level memory system.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BusModel {
    /// Peak instruction rate of one PE in instructions per microsecond.
    pub pe_mips: f64,
    /// Data references per instruction (the paper uses ~3 for large programs).
    pub refs_per_instruction: f64,
    /// Bus bandwidth in words per microsecond.
    pub bus_words_per_us: f64,
    /// Fixed per-transaction overhead, expressed in words.
    pub words_per_transaction_overhead: f64,
}

impl Default for BusModel {
    fn default() -> Self {
        // A fast-for-1988 shared bus: 32-bit wide at ~25 MHz with some
        // overhead, i.e. on the order of 80 MB/s of useful data bandwidth.
        BusModel {
            pe_mips: 1.0,
            refs_per_instruction: 3.0,
            bus_words_per_us: 20.0,
            words_per_transaction_overhead: 0.5,
        }
    }
}

/// Output of the queueing model for one system configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BusModelResult {
    pub num_pes: usize,
    /// Offered bus utilisation (can exceed 1.0 when the bus saturates).
    pub offered_utilisation: f64,
    /// Actual utilisation (capped at 1.0).
    pub utilisation: f64,
    /// Mean waiting time per bus request, in microseconds.
    pub mean_wait_us: f64,
    /// Fraction of peak PE speed retained after memory stalls.
    pub efficiency: f64,
    /// Effective aggregate speed in (application) MLIPS assuming
    /// `instructions_per_inference` WAM instructions per inference.
    pub effective_mlips: f64,
}

impl BusModel {
    /// The "current technology" configuration the paper's Section 3.3 argues
    /// from: high-performance PEs and a fast bus / interleaved memory system
    /// ("multiple or overlapped busses").
    pub fn paper_technology() -> Self {
        BusModel {
            pe_mips: 2.0,
            refs_per_instruction: 3.0,
            bus_words_per_us: 40.0,
            words_per_transaction_overhead: 0.25,
        }
    }

    /// Evaluate the model for `num_pes` PEs whose caches leave `traffic_ratio`
    /// of their references on the bus, assuming `instructions_per_inference`
    /// instructions per logical inference (the paper uses 15).
    ///
    /// The PEs form a *closed* system: when the bus backs up they slow down
    /// rather than queueing unboundedly, so efficiency is the smaller of a
    /// light-load (M/D/1 waiting) estimate and the bandwidth bound.
    pub fn evaluate(
        &self,
        num_pes: usize,
        traffic_ratio: f64,
        instructions_per_inference: f64,
    ) -> BusModelResult {
        // Requests per microsecond per PE (in words).
        let words_per_us_per_pe = self.pe_mips * self.refs_per_instruction * traffic_ratio;
        let effective_word_cost = 1.0 + self.words_per_transaction_overhead;
        let offered = num_pes as f64 * words_per_us_per_pe * effective_word_cost / self.bus_words_per_us;
        let utilisation = offered.min(1.0);

        // M/D/1 mean wait at a capped utilisation (the closed system never
        // actually exceeds the cap): W = rho / (2 * mu * (1 - rho)).
        let mu = self.bus_words_per_us / effective_word_cost;
        let rho_eff = offered.min(0.90);
        let mean_wait_us = rho_eff / (2.0 * mu * (1.0 - rho_eff));

        // Light-load estimate: each bus-bound reference stalls the PE for the
        // wait plus its own service time.
        let service_us = 1.0 / mu;
        let stall_per_instruction = self.refs_per_instruction * traffic_ratio * (mean_wait_us + service_us);
        let base_instruction_us = 1.0 / self.pe_mips;
        let light_load = base_instruction_us / (base_instruction_us + stall_per_instruction);
        // Bandwidth bound: the bus cannot move more words than it has cycles.
        let bandwidth_bound = if offered > 0.0 { (1.0 / offered).min(1.0) } else { 1.0 };
        let efficiency = light_load.min(bandwidth_bound).clamp(0.0, 1.0);

        let aggregate_mips = num_pes as f64 * self.pe_mips * efficiency;
        let effective_mlips = aggregate_mips / instructions_per_inference;
        BusModelResult {
            num_pes,
            offered_utilisation: offered,
            utilisation,
            mean_wait_us,
            efficiency,
            effective_mlips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_traffic_gives_high_efficiency() {
        let m = BusModel::default();
        let r = m.evaluate(8, 0.1, 15.0);
        assert!(r.efficiency > 0.8, "efficiency {} too low for a 0.1 traffic ratio", r.efficiency);
        assert!(r.utilisation < 0.5);
    }

    #[test]
    fn saturated_bus_caps_throughput() {
        let m = BusModel::default();
        let r = m.evaluate(64, 1.0, 15.0);
        assert!(r.offered_utilisation > 1.0);
        assert!(r.efficiency < 0.5);
    }

    #[test]
    fn efficiency_is_monotone_across_the_saturation_boundary() {
        let m = BusModel::default();
        let mut last = f64::INFINITY;
        for pes in 1..40 {
            let e = m.evaluate(pes, 0.5, 15.0).efficiency;
            assert!(e <= last + 1e-12, "efficiency rose from {last} to {e} at {pes} PEs");
            last = e;
        }
    }

    #[test]
    fn paper_technology_reaches_two_mlips_with_good_caches() {
        // The paper's argument: with caches capturing ~70% of the traffic and
        // a fast bus, ~2 million application inferences per second are
        // attainable on a medium-sized machine.
        let m = BusModel::paper_technology();
        let best = [8usize, 16, 24, 32]
            .iter()
            .map(|&p| m.evaluate(p, 0.3, 15.0).effective_mlips)
            .fold(0.0f64, f64::max);
        assert!(best >= 2.0, "paper-technology model only reaches {best:.2} MLIPS");
    }

    #[test]
    fn efficiency_decreases_with_more_pes() {
        let m = BusModel::default();
        let e2 = m.evaluate(2, 0.3, 15.0).efficiency;
        let e8 = m.evaluate(8, 0.3, 15.0).efficiency;
        let e32 = m.evaluate(32, 0.3, 15.0).efficiency;
        assert!(e2 >= e8 && e8 >= e32);
    }

    #[test]
    fn mlips_scale_with_pe_count_until_saturation() {
        let m = BusModel::default();
        let m4 = m.evaluate(4, 0.3, 15.0).effective_mlips;
        let m8 = m.evaluate(8, 0.3, 15.0).effective_mlips;
        assert!(m8 > m4);
    }

    #[test]
    fn paper_back_of_envelope_is_achievable() {
        // The paper argues that ~2 million application inferences per second
        // are achievable when caches capture 70% of a 360 MB/s demand; with
        // a bus providing >= 108 MB/s (27 words/us) the model should agree.
        let m = BusModel {
            pe_mips: 2.0,
            refs_per_instruction: 3.0,
            bus_words_per_us: 30.0,
            words_per_transaction_overhead: 0.25,
        };
        // 16 PEs at 2 MIPS = 32 MIPS of WAM instructions ≈ 2.1 MLIPS at 15
        // instructions per inference — provided efficiency stays high.
        let r = m.evaluate(16, 0.3, 15.0);
        assert!(r.effective_mlips > 1.5, "model predicts only {} MLIPS", r.effective_mlips);
    }
}
