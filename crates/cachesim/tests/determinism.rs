//! Determinism: the simulator is a pure function of (config, trace). The
//! same inputs must give bit-identical `SimResult`s across repeated runs,
//! across interleaved runs of other configurations, for every protocol, and
//! through the parallel sweep.

use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_cachesim::sweep::run_sweep_with_threads;
use pwam_cachesim::{run_sweep, simulate, CacheConfig, Protocol, SimConfig};
use rapwam::session::{QueryOptions, Session};
use rapwam::{Area, Locality, MemRef, ObjectKind};

fn engine_trace() -> Vec<MemRef> {
    let bench = benchmark(BenchmarkId::Qsort, Scale::Small);
    let mut session = Session::new(&bench.program).unwrap();
    let result = session.run(&bench.query, &QueryOptions::parallel(4).with_trace()).unwrap();
    result.trace.expect("tracing was requested")
}

fn synthetic_trace() -> Vec<MemRef> {
    (0..10_000u32)
        .map(|i| MemRef {
            pe: (i % 4) as u8,
            addr: (i.wrapping_mul(31)) % 8192,
            write: i % 3 == 0,
            area: if i % 5 == 0 { Area::Trail } else { Area::Heap },
            object: if i % 5 == 0 { ObjectKind::TrailEntry } else { ObjectKind::HeapTerm },
            locality: if i % 2 == 0 { Locality::Local } else { Locality::Global },
            locked: false,
        })
        .collect()
}

fn config(protocol: Protocol) -> SimConfig {
    SimConfig {
        cache: CacheConfig { size_words: 1024, line_words: 4, write_allocate: true },
        protocol,
        num_pes: 4,
    }
}

#[test]
fn repeated_runs_are_identical_for_every_protocol() {
    for trace in [engine_trace(), synthetic_trace()] {
        for protocol in Protocol::ALL {
            let cfg = config(protocol);
            let first = simulate(&cfg, &trace);
            for _ in 0..3 {
                assert_eq!(first, simulate(&cfg, &trace), "protocol {protocol:?} not deterministic");
            }
        }
    }
}

#[test]
fn interleaving_other_configurations_does_not_perturb_results() {
    let trace = synthetic_trace();
    let baselines: Vec<_> = Protocol::ALL.iter().map(|&p| simulate(&config(p), &trace)).collect();
    // Re-run in reverse order, interleaved with differently-sized caches.
    for (&protocol, baseline) in Protocol::ALL.iter().zip(&baselines).rev() {
        let small = SimConfig {
            cache: CacheConfig { size_words: 64, line_words: 4, write_allocate: false },
            protocol,
            num_pes: 4,
        };
        let _ = simulate(&small, &trace);
        assert_eq!(baseline, &simulate(&config(protocol), &trace));
    }
}

#[test]
fn engine_trace_itself_is_deterministic() {
    // Two fresh sessions over the same program and query must emit the same
    // reference trace — the property that makes trace-driven simulation
    // reproducible end to end.
    let a = engine_trace();
    let b = engine_trace();
    assert_eq!(a, b);
}

#[test]
fn parallel_sweep_is_deterministic_at_any_thread_count() {
    let trace = synthetic_trace();
    let configs: Vec<SimConfig> = Protocol::ALL
        .iter()
        .flat_map(|&p| {
            [64u32, 1024].into_iter().map(move |size| SimConfig {
                cache: CacheConfig { size_words: size, line_words: 4, write_allocate: size >= 512 },
                protocol: p,
                num_pes: 4,
            })
        })
        .collect();
    let reference = run_sweep(&trace, &configs);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            reference,
            run_sweep_with_threads(&trace, &configs, threads),
            "sweep differs at {threads} threads"
        );
    }
    assert_eq!(reference, run_sweep(&trace, &configs));
}
