//! Property-based tests of the cache simulator: structural invariants that
//! must hold for every protocol over arbitrary reference streams.

use proptest::prelude::*;
use pwam_cachesim::{simulate, CacheConfig, Protocol, SimConfig};
use rapwam::{Area, Locality, MemRef, ObjectKind};

/// A compact random reference description.
#[derive(Debug, Clone, Copy)]
struct RefSpec {
    pe: u8,
    addr: u32,
    write: bool,
    local: bool,
}

fn arb_refs(max_pes: u8) -> impl Strategy<Value = Vec<RefSpec>> {
    prop::collection::vec(
        (0..max_pes, 0u32..2048, any::<bool>(), any::<bool>()).prop_map(|(pe, addr, write, local)| RefSpec {
            pe,
            addr,
            write,
            local,
        }),
        1..2000,
    )
}

fn to_trace(specs: &[RefSpec]) -> Vec<MemRef> {
    specs
        .iter()
        .map(|s| MemRef {
            pe: s.pe,
            addr: s.addr,
            write: s.write,
            area: if s.local { Area::Trail } else { Area::Heap },
            object: if s.local { ObjectKind::TrailEntry } else { ObjectKind::HeapTerm },
            locality: if s.local { Locality::Local } else { Locality::Global },
            locked: false,
        })
        .collect()
}

fn config(protocol: Protocol, size: u32, write_allocate: bool, pes: usize) -> SimConfig {
    SimConfig {
        cache: CacheConfig { size_words: size, line_words: 4, write_allocate },
        protocol,
        num_pes: pes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_is_consistent_for_every_protocol(specs in arb_refs(4), size in prop::sample::select(vec![64u32, 256, 1024]), wa in any::<bool>()) {
        let trace = to_trace(&specs);
        for protocol in Protocol::ALL {
            let r = simulate(&config(protocol, size, wa, 4), &trace);
            // Reference counts add up.
            prop_assert_eq!(r.refs, trace.len() as u64);
            prop_assert_eq!(r.reads + r.writes, r.refs);
            prop_assert!(r.read_misses <= r.reads);
            prop_assert!(r.write_misses <= r.writes);
            // Bus words decompose into the counted causes.
            let line = 4u64;
            let explained = r.line_fetches * line + r.write_backs * line + r.write_through_words + r.updates;
            prop_assert!(r.bus_words <= explained,
                "bus words {} exceed explained traffic {}", r.bus_words, explained);
            // Traffic ratio is bounded: at worst every reference moves a full
            // line plus a write-back.
            prop_assert!(r.traffic_ratio() <= 2.0 * line as f64 + 1.0);
        }
    }

    #[test]
    fn bigger_caches_never_fetch_more_lines_single_pe(specs in arb_refs(1)) {
        // With a single PE (no coherency interference), LRU inclusion holds:
        // a larger fully associative LRU cache never misses more.
        let trace = to_trace(&specs);
        let mut last_fetches = u64::MAX;
        for size in [64u32, 256, 1024, 4096] {
            let r = simulate(&config(Protocol::WriteInBroadcast, size, true, 1), &trace);
            prop_assert!(r.line_fetches <= last_fetches,
                "{size}-word cache fetched {} lines, smaller cache fetched {last_fetches}", r.line_fetches);
            last_fetches = r.line_fetches;
        }
    }

    #[test]
    fn write_through_never_beats_broadcast_on_writes(specs in arb_refs(2)) {
        let trace = to_trace(&specs);
        let wt = simulate(&config(Protocol::WriteThrough, 1024, true, 2), &trace);
        let bc = simulate(&config(Protocol::WriteInBroadcast, 1024, true, 2), &trace);
        // Write-through sends every write to memory; the broadcast cache only
        // moves data words for misses, write-backs and ownership changes.
        prop_assert!(wt.write_through_words >= bc.write_through_words);
    }

    #[test]
    fn update_and_invalidate_broadcasts_have_identical_read_behaviour_single_pe(specs in arb_refs(1)) {
        let trace = to_trace(&specs);
        let upd = simulate(&config(Protocol::WriteThroughBroadcast, 512, true, 1), &trace);
        let inv = simulate(&config(Protocol::WriteInBroadcast, 512, true, 1), &trace);
        // With one PE there is nothing to invalidate or update, so the two
        // broadcast variants must behave identically.
        prop_assert_eq!(upd.read_misses, inv.read_misses);
        prop_assert_eq!(upd.bus_words, inv.bus_words);
    }
}
